"""Kernel-backend registry, scratch arena, and bit-equivalence tests.

The load-bearing contract: every registered backend produces
byte-identical arrays to ``reference`` for every kernel, forward and
backward (the CCQ-trajectory half of the contract lives in
``tests/core/test_backend_invariance.py``).
"""

import numpy as np
import pytest

from repro.nn import Tensor, backends, no_grad
from repro.nn import functional as F
from repro.nn.backends import (
    FastBackend,
    KernelBackend,
    ReferenceBackend,
    ScratchArena,
    available_backends,
    current,
    get_backend,
    register_backend,
    set_default_backend,
    use_backend,
)
from repro.telemetry.profiler import OpProfiler


class TestRegistry:
    def test_builtin_backends_registered(self):
        assert available_backends() == ("fast", "reference", "threaded")
        assert current().name == "reference"
        assert isinstance(get_backend("fast"), FastBackend)
        assert isinstance(get_backend("reference"), ReferenceBackend)
        assert isinstance(get_backend("threaded"), FastBackend)

    def test_unknown_backend_names_the_alternatives(self):
        with pytest.raises(KeyError, match="fast.*reference"):
            get_backend("cudnn")
        with pytest.raises(KeyError):
            set_default_backend("cudnn")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend(ReferenceBackend())

    def test_base_name_rejected(self):
        with pytest.raises(ValueError):
            register_backend(KernelBackend())

    def test_overwrite_allows_replacement(self):
        class Custom(KernelBackend):
            name = "custom-test"

        try:
            first = register_backend(Custom())
            replacement = Custom()
            with pytest.raises(ValueError):
                register_backend(replacement)
            assert register_backend(replacement, overwrite=True) is replacement
            assert get_backend("custom-test") is replacement
            assert get_backend("custom-test") is not first
        finally:
            backends._REGISTRY.pop("custom-test", None)

    def test_use_backend_restores_on_exception(self):
        assert current().name == "reference"
        with pytest.raises(RuntimeError):
            with use_backend("fast"):
                assert current().name == "fast"
                raise RuntimeError("boom")
        assert current().name == "reference"

    def test_set_default_returns_previous(self):
        previous = set_default_backend("fast")
        try:
            assert previous == "reference"
            assert current().name == "fast"
        finally:
            set_default_backend(previous)


class TestScratchArena:
    def test_same_key_reuses_buffer(self):
        arena = ScratchArena(capacity=4)
        a = arena.get((3, 5), np.float64)
        b = arena.get((3, 5), np.float64)
        assert a is b
        assert arena.allocations == 1
        assert arena.hits == 1

    def test_tag_separates_equal_shapes(self):
        arena = ScratchArena(capacity=4)
        a = arena.get((3, 5), np.float64, tag="im2col")
        b = arena.get((3, 5), np.float64, tag=("pad", 1, 1))
        assert a is not b
        assert len(arena) == 2

    def test_zero_on_alloc_zero_fills_fresh_buffers(self):
        arena = ScratchArena(capacity=2)
        buf = arena.get((4, 4), np.float64, zero_on_alloc=True)
        np.testing.assert_array_equal(buf, np.zeros((4, 4)))

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ScratchArena(capacity=0)

    def test_eviction_drops_only_the_oldest(self):
        arena = ScratchArena(capacity=2)
        arena.get((1,), np.float64, tag="a")
        keep = arena.get((1,), np.float64, tag="b")
        arena.get((1,), np.float64, tag="c")  # evicts "a" only
        assert len(arena) == 2
        assert arena.evictions == 1
        assert arena.get((1,), np.float64, tag="b") is keep
        # "a" was evicted: requesting it allocates anew.
        before = arena.allocations
        arena.get((1,), np.float64, tag="a")
        assert arena.allocations == before + 1

    def test_hot_key_survives_cold_key_cycling(self):
        """The regression the LRU fixes: the old scratch dict cleared
        *everything* at the cap, so a workload cycling more shapes than
        the capacity reallocated its hottest buffer every pass.  With
        per-entry LRU eviction the hot buffer must stay resident no
        matter how many cold shapes stream past."""
        arena = ScratchArena(capacity=4)
        hot = arena.get((8, 8), np.float64, tag="hot")
        n_cold = 25
        for i in range(n_cold):
            arena.get((2, 2), np.float64, tag=("cold", i))
            assert arena.get((8, 8), np.float64, tag="hot") is hot
        # Every cold miss past the three free slots evicted exactly one
        # cold entry; the hot buffer was never reallocated.
        assert arena.allocations == 1 + n_cold
        assert arena.evictions == n_cold - 3

    def test_clear_drops_buffers_but_keeps_lifetime_counters(self):
        arena = ScratchArena(capacity=4)
        arena.get((2,), np.float64)
        arena.get((2,), np.float64)
        arena.clear()
        assert len(arena) == 0
        assert arena.total_bytes == 0
        assert arena.allocations == 1
        assert arena.hits == 1

    def test_profiler_high_water_tracks_live_bytes(self):
        """Fresh allocations notify the active profiler with the arena
        total *after* eviction, so the high-water mark reflects bytes
        actually resident, not lifetime churn."""
        arena = ScratchArena(capacity=1)
        with OpProfiler() as profiler:
            arena.get((1,), np.float64)   # 8 bytes live
            arena.get((2,), np.float64)   # evicts first: 16 bytes live
            arena.get((2,), np.float64)   # hit: no notification
        assert profiler.scratch_allocations == 2
        assert profiler.scratch_high_water_bytes == 16


def conv_configs():
    """Randomized conv shapes covering the bit-identity edge cases:
    stride over/under kernel (overlapping windows), odd sizes, 1x1."""
    rng = np.random.default_rng(20240808)
    configs = []
    for _ in range(12):
        k = int(rng.choice([1, 2, 3, 5]))
        configs.append(dict(
            n=int(rng.integers(1, 4)),
            c=int(rng.integers(1, 6)),
            f=int(rng.integers(1, 7)),
            size=int(rng.integers(k, k + 9)),
            k=k,
            stride=int(rng.integers(1, 3)),
            padding=int(rng.integers(0, 3)),
            bias=bool(rng.integers(0, 2)),
        ))
    return configs


@pytest.mark.parametrize("name", ["fast"])
class TestBackendBitEquivalence:
    """Byte-for-byte agreement with `reference` on every kernel."""

    @pytest.mark.parametrize("cfg", conv_configs())
    def test_conv2d_forward_backward(self, name, cfg):
        rng = np.random.default_rng(cfg["k"] * 100 + cfg["size"])
        x0 = rng.normal(size=(cfg["n"], cfg["c"], cfg["size"], cfg["size"]))
        w0 = rng.normal(size=(cfg["f"], cfg["c"], cfg["k"], cfg["k"]))
        b0 = rng.normal(size=(cfg["f"],)) if cfg["bias"] else None

        outs, grads = {}, {}
        for backend in ("reference", name):
            with use_backend(backend):
                x = Tensor(x0.copy(), requires_grad=True)
                w = Tensor(w0.copy(), requires_grad=True)
                b = Tensor(b0.copy(), requires_grad=True) if cfg["bias"] \
                    else None
                out = F.conv2d(x, w, b, stride=cfg["stride"],
                               padding=cfg["padding"])
                (out * out).sum().backward()
                outs[backend] = out.data
                grads[backend] = (
                    x.grad, w.grad, None if b is None else b.grad
                )
                with no_grad():
                    inference = F.conv2d(
                        Tensor(x0.copy()), Tensor(w0.copy()),
                        None if b0 is None else Tensor(b0.copy()),
                        stride=cfg["stride"], padding=cfg["padding"],
                    )
                np.testing.assert_array_equal(inference.data, out.data)

        np.testing.assert_array_equal(outs[name], outs["reference"])
        for got, want in zip(grads[name], grads["reference"]):
            if want is None:
                assert got is None
            else:
                np.testing.assert_array_equal(got, want)

    @pytest.mark.parametrize("padding", [0, 1])
    @pytest.mark.parametrize("pool", ["max", "avg"])
    def test_pooling_forward_backward(self, name, pool, padding):
        op = F.max_pool2d if pool == "max" else F.avg_pool2d
        rng = np.random.default_rng(7)
        x0 = rng.normal(size=(2, 3, 9, 9))

        results = {}
        for backend in ("reference", name):
            with use_backend(backend):
                x = Tensor(x0.copy(), requires_grad=True)
                out = op(x, 3, stride=2, padding=padding)
                (out * out).sum().backward()
                results[backend] = (out.data, x.grad)

        np.testing.assert_array_equal(
            results[name][0], results["reference"][0]
        )
        np.testing.assert_array_equal(
            results[name][1], results["reference"][1]
        )

    def test_linear_forward_backward(self, name):
        rng = np.random.default_rng(11)
        x0 = rng.normal(size=(5, 12))
        w0 = rng.normal(size=(7, 12))
        b0 = rng.normal(size=(7,))

        results = {}
        for backend in ("reference", name):
            with use_backend(backend):
                x = Tensor(x0.copy(), requires_grad=True)
                w = Tensor(w0.copy(), requires_grad=True)
                b = Tensor(b0.copy(), requires_grad=True)
                out = F.linear(x, w, b)
                (out * out).sum().backward()
                results[backend] = (out.data, x.grad, w.grad, b.grad)

        for got, want in zip(results[name], results["reference"]):
            np.testing.assert_array_equal(got, want)

    def test_im2col_col2im_kernels(self, name):
        rng = np.random.default_rng(13)
        x = rng.normal(size=(2, 4, 10, 10))
        ref, other = get_backend("reference"), get_backend(name)
        for k, stride, padding in [(3, 1, 1), (3, 2, 0), (2, 1, 1),
                                   (5, 2, 2)]:
            cols_ref, size_ref = ref.im2col(
                x, (k, k), (stride, stride), (padding, padding)
            )
            cols, size = other.im2col(
                x, (k, k), (stride, stride), (padding, padding)
            )
            assert size == size_ref
            np.testing.assert_array_equal(cols, cols_ref)

            dcols = rng.normal(size=cols_ref.shape)
            np.testing.assert_array_equal(
                other.col2im(dcols, x.shape, (k, k), (stride, stride),
                             (padding, padding), size),
                ref.col2im(dcols, x.shape, (k, k), (stride, stride),
                           (padding, padding), size),
            )

    def test_integer_kernels_exact(self, name):
        rng = np.random.default_rng(17)
        ref, other = get_backend("reference"), get_backend(name)

        a = rng.integers(-500, 500, size=(37, 20)).astype(np.int64)
        b = rng.integers(-500, 500, size=(20, 9)).astype(np.int64)
        np.testing.assert_array_equal(
            other.int_gemm(a, b), ref.int_gemm(a, b)
        )
        # Transposed (non-contiguous) operand, as integer_linear uses.
        np.testing.assert_array_equal(
            other.int_gemm(a, b.T.copy().T),
            ref.int_gemm(a, b),
        )

        codes = rng.integers(0, 255, size=(2, 3, 8, 8)).astype(np.int64)
        for padding in (0, 1):
            cols_ref, mask_ref, size_ref = ref.int_im2col(
                codes, (3, 3), (1, 1), (padding, padding)
            )
            cols, mask, size = other.int_im2col(
                codes, (3, 3), (1, 1), (padding, padding)
            )
            assert size == size_ref
            assert cols.dtype == np.int64 and mask.dtype == np.int64
            np.testing.assert_array_equal(cols, cols_ref)
            np.testing.assert_array_equal(mask, mask_ref)

    def test_integer_conv2d_identical_across_backends(self, name):
        from repro.quantization.integer_inference import (
            AffineCode, integer_conv2d,
        )

        rng = np.random.default_rng(19)
        x = AffineCode(
            codes=rng.integers(0, 15, size=(2, 3, 9, 9)).astype(np.int64),
            scale=0.125, offset=-0.875,
        )
        w = AffineCode(
            codes=rng.integers(0, 7, size=(4, 3, 3, 3)).astype(np.int64),
            scale=0.25, offset=-0.75,
        )
        bias = rng.normal(size=(4,))
        with use_backend("reference"):
            want = integer_conv2d(x, w, bias, stride=2, padding=1)
        with use_backend(name):
            got = integer_conv2d(x, w, bias, stride=2, padding=1)
        np.testing.assert_array_equal(got, want)


class TestFusedQuantConv:
    def make_quantizer(self, bits=4):
        from repro.quantization.dorefa import DoReFaWeightQuantizer

        quantizer = DoReFaWeightQuantizer()
        quantizer.set_bits(bits)
        return quantizer

    @pytest.mark.parametrize("backend", ["reference", "fast"])
    def test_fused_matches_unfused_bitwise(self, backend):
        rng = np.random.default_rng(23)
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        w = Tensor(rng.normal(size=(4, 3, 3, 3)) * 0.2)
        b = Tensor(rng.normal(size=(4,)) * 0.1)
        quantizer = self.make_quantizer()

        with use_backend(backend), no_grad():
            unfused = F.conv2d(x, quantizer(w), b, stride=1, padding=1)
            fused = F.fused_quant_conv2d(
                x, w, b, quantizer, stride=1, padding=1
            )
        np.testing.assert_array_equal(fused.data, unfused.data)

    def test_fused_is_one_dispatch(self):
        from repro.nn.autograd import inference_dispatch_count

        rng = np.random.default_rng(29)
        x = Tensor(rng.normal(size=(1, 2, 6, 6)))
        w = Tensor(rng.normal(size=(3, 2, 3, 3)))
        quantizer = self.make_quantizer()
        with no_grad():
            before = inference_dispatch_count()
            F.fused_quant_conv2d(x, w, None, quantizer)
            fused_cost = inference_dispatch_count() - before
            before = inference_dispatch_count()
            F.conv2d(x, quantizer(w))
            unfused_cost = inference_dispatch_count() - before
        # The quantizer's inner Tensor math dispatches inside the fused
        # kernel too, so fusion trades the separate conv dispatch for
        # the one fused dispatch: never more than the unfused chain.
        assert fused_cost == unfused_cost

    def test_fused_rejects_grad_mode(self):
        x = Tensor(np.zeros((1, 2, 6, 6)))
        w = Tensor(np.zeros((3, 2, 3, 3)), requires_grad=True)
        with pytest.raises(RuntimeError, match="inference-only"):
            F.fused_quant_conv2d(x, w, None, self.make_quantizer())

    def test_quant_conv_module_uses_fused_path_uncached(self):
        """QuantConv2d inference without the frozen-weight cache must
        route through the fused op — and produce the same bytes as the
        cached/unfused route."""
        from repro.nn.modules import Conv2d
        from repro.quantization import quantize_model
        from repro.nn import Sequential

        rng = np.random.default_rng(31)
        net = Sequential(Conv2d(3, 4, 3, padding=1, rng=rng))
        quantize_model(net, "pact")
        qconv = net[0]
        qconv.w_bits = 4
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))

        with OpProfiler() as profiler, no_grad():
            fused_out = net(x)
        assert any(
            op.startswith("fusedquantconv2d") for op in profiler.ops
        ), sorted(profiler.ops)

        qconv._wq_cache_enabled = True
        with OpProfiler() as profiler, no_grad():
            cached_out = net(x)
        assert not any(
            op.startswith("fusedquantconv2d") for op in profiler.ops
        )
        np.testing.assert_array_equal(fused_out.data, cached_out.data)


class TestKernelProfiling:
    def test_kernel_table_records_backend_and_kernel(self):
        rng = np.random.default_rng(37)
        x = Tensor(rng.normal(size=(1, 2, 8, 8)))
        w = Tensor(rng.normal(size=(3, 2, 3, 3)))
        with OpProfiler() as profiler, use_backend("fast"), no_grad():
            F.conv2d(x, w, padding=1)
        keys = set(profiler.kernels)
        assert ("fast", "conv2d_forward") in keys
        assert ("fast", "im2col") in keys
        assert ("fast", "gemm") in keys
        stats = profiler.kernels[("fast", "gemm")]
        assert stats.calls == 1 and stats.total_s >= 0.0
        summary = profiler.summary()
        assert any(
            k["backend"] == "fast" and k["kernel"] == "gemm"
            for k in summary["kernels"]
        )
        assert "fast.gemm" in profiler.format_table()

    def test_no_profiler_no_kernel_overhead_state(self):
        # Without an installed profiler the @kernel wrapper must not
        # record anywhere (regression guard for the lazy-hook lookup).
        profiler = OpProfiler()
        with no_grad():
            F.conv2d(Tensor(np.ones((1, 1, 4, 4))),
                     Tensor(np.ones((1, 1, 3, 3))))
        assert profiler.kernels == {}
