"""Gradient and semantics checks for the NN op set."""

import numpy as np
import pytest
from scipy import signal

from repro.nn import functional as F
from repro.nn.tensor import Tensor

from .test_tensor import numerical_grad


class TestConv2d:
    def test_matches_scipy_correlate(self, rng):
        x = rng.normal(size=(1, 2, 8, 8))
        w = rng.normal(size=(3, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), padding=1).data
        for f in range(3):
            expected = np.zeros((8, 8))
            for c in range(2):
                expected += signal.correlate2d(x[0, c], w[f, c], mode="same")
            np.testing.assert_allclose(out[0, f], expected, atol=1e-10)

    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 1), (3, 2)])
    def test_output_shape(self, rng, stride, padding):
        x = Tensor(rng.normal(size=(2, 3, 11, 11)))
        w = Tensor(rng.normal(size=(4, 3, 3, 3)))
        out = F.conv2d(x, w, stride=stride, padding=padding)
        expected = F.conv_output_size(11, 3, stride, padding)
        assert out.shape == (2, 4, expected, expected)

    @pytest.mark.parametrize("stride,padding", [(1, 1), (2, 0), (2, 1)])
    def test_gradients(self, rng, stride, padding):
        x = Tensor(rng.normal(size=(2, 2, 6, 6)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)

        def loss():
            out = F.conv2d(x, w, b, stride=stride, padding=padding)
            return (out ** 2).sum().item()

        (F.conv2d(x, w, b, stride=stride, padding=padding) ** 2).sum().backward()
        for t in (x, w, b):
            np.testing.assert_allclose(
                t.grad, numerical_grad(loss, t.data), atol=1e-5
            )

    def test_no_bias_gradients(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 5, 5)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 2, 3, 3)), requires_grad=True)

        def loss():
            return (F.conv2d(x, w, padding=1) ** 2).sum().item()

        (F.conv2d(x, w, padding=1) ** 2).sum().backward()
        np.testing.assert_allclose(w.grad, numerical_grad(loss, w.data), atol=1e-5)
        np.testing.assert_allclose(x.grad, numerical_grad(loss, x.data), atol=1e-5)

    def test_rectangular_input(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 6, 10)))
        w = Tensor(rng.normal(size=(1, 1, 3, 3)))
        assert F.conv2d(x, w, stride=2, padding=1).shape == (1, 1, 3, 5)


class TestPooling:
    def test_max_pool_forward(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2).data
        np.testing.assert_allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_max_pool_with_padding(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 5, 5)))
        out = F.max_pool2d(x, 3, stride=2, padding=1)
        assert out.shape == (1, 2, 3, 3)

    def test_max_pool_grad(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 6, 6)), requires_grad=True)

        def loss():
            return (F.max_pool2d(x, 3, 2, 1) ** 2).sum().item()

        (F.max_pool2d(x, 3, 2, 1) ** 2).sum().backward()
        np.testing.assert_allclose(x.grad, numerical_grad(loss, x.data), atol=1e-5)

    def test_avg_pool_forward(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), 2).data
        np.testing.assert_allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_grad(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 6, 6)), requires_grad=True)

        def loss():
            return (F.avg_pool2d(x, 2) ** 2).sum().item()

        (F.avg_pool2d(x, 2) ** 2).sum().backward()
        np.testing.assert_allclose(x.grad, numerical_grad(loss, x.data), atol=1e-5)

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 3, 4, 5))
        np.testing.assert_allclose(
            F.global_avg_pool2d(Tensor(x)).data, x.mean(axis=(2, 3))
        )


class TestAvgPoolPadding:
    """Zero-padded average pooling with padded cells excluded from the
    divisor (torch's count_include_pad=False)."""

    def test_shape(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 5, 5)))
        assert F.avg_pool2d(x, 3, stride=2, padding=1).shape == (1, 2, 3, 3)

    def test_constant_input_pools_to_constant(self):
        # The defining property of count_include_pad=False: edge
        # windows average only the cells they actually cover.
        x = Tensor(np.full((2, 3, 5, 5), 1.75))
        out = F.avg_pool2d(x, 3, stride=2, padding=1)
        np.testing.assert_array_equal(
            out.data, np.full((2, 3, 3, 3), 1.75)
        )

    def test_corner_window_divisor(self):
        x = np.zeros((1, 1, 4, 4))
        x[0, 0, 0, 0] = 8.0
        out = F.avg_pool2d(Tensor(x), 3, stride=2, padding=1).data
        # The top-left 3x3 window covers a 2x2 real region (4 cells),
        # so the lone 8.0 averages to 2.0 — not 8/9.
        assert out[0, 0, 0, 0] == pytest.approx(2.0)

    def test_matches_manual_window_means(self, rng):
        x = rng.normal(size=(2, 2, 5, 5))
        out = F.avg_pool2d(Tensor(x), 3, stride=2, padding=1).data
        for oi in range(3):
            for oj in range(3):
                i0, j0 = oi * 2 - 1, oj * 2 - 1
                window = x[
                    :, :,
                    max(i0, 0): min(i0 + 3, 5),
                    max(j0, 0): min(j0 + 3, 5),
                ]
                np.testing.assert_allclose(
                    out[:, :, oi, oj], window.mean(axis=(-1, -2))
                )

    def test_grad_with_padding(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 5, 5)), requires_grad=True)

        def loss():
            return (F.avg_pool2d(x, 3, 2, 1) ** 2).sum().item()

        (F.avg_pool2d(x, 3, 2, 1) ** 2).sum().backward()
        np.testing.assert_allclose(
            x.grad, numerical_grad(loss, x.data), atol=1e-5
        )

    def test_unpadded_path_unchanged(self, rng):
        # padding=0 must take the exact pre-existing mean() code path.
        x = rng.normal(size=(1, 2, 6, 6))
        np.testing.assert_array_equal(
            F.avg_pool2d(Tensor(x), 2, padding=0).data,
            F.avg_pool2d(Tensor(x), 2).data,
        )

    def test_module_forwards_padding(self, rng):
        from repro.nn import AvgPool2d

        x = Tensor(rng.normal(size=(1, 2, 5, 5)))
        module = AvgPool2d(3, stride=2, padding=1)
        np.testing.assert_array_equal(
            module(x).data, F.avg_pool2d(x, 3, 2, 1).data
        )


class TestLinear:
    def test_forward(self, rng):
        x = rng.normal(size=(4, 3))
        w = rng.normal(size=(2, 3))
        b = rng.normal(size=(2,))
        out = F.linear(Tensor(x), Tensor(w), Tensor(b)).data
        np.testing.assert_allclose(out, x @ w.T + b)

    def test_no_bias(self, rng):
        x = rng.normal(size=(4, 3))
        w = rng.normal(size=(2, 3))
        np.testing.assert_allclose(
            F.linear(Tensor(x), Tensor(w)).data, x @ w.T
        )


class TestSoftmaxAndLosses:
    def test_softmax_sums_to_one(self, rng):
        logits = Tensor(rng.normal(size=(5, 7)) * 10)
        probs = F.softmax(logits).data
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5), atol=1e-12)
        assert (probs >= 0).all()

    def test_log_softmax_stable_for_large_logits(self):
        logits = Tensor(np.array([[1000.0, 0.0]]))
        out = F.log_softmax(logits).data
        assert np.isfinite(out).all()

    def test_log_softmax_grad(self, rng):
        x = Tensor(rng.normal(size=(3, 4)), requires_grad=True)

        def loss():
            return (F.log_softmax(x) ** 2).sum().item()

        (F.log_softmax(x) ** 2).sum().backward()
        np.testing.assert_allclose(x.grad, numerical_grad(loss, x.data), atol=1e-5)

    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.normal(size=(6, 4))
        targets = rng.integers(0, 4, size=6)
        loss = F.cross_entropy(Tensor(logits), targets).item()
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(6), targets].mean()
        assert loss == pytest.approx(expected)

    def test_cross_entropy_grad(self, rng):
        logits = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        targets = rng.integers(0, 5, size=4)

        def loss():
            return F.cross_entropy(logits, targets).item()

        F.cross_entropy(logits, targets).backward()
        np.testing.assert_allclose(
            logits.grad, numerical_grad(loss, logits.data), atol=1e-6
        )

    def test_nll_matches_cross_entropy(self, rng):
        logits = Tensor(rng.normal(size=(4, 5)))
        targets = rng.integers(0, 5, size=4)
        ce = F.cross_entropy(logits, targets).item()
        nll = F.nll_loss(F.log_softmax(logits), targets).item()
        assert ce == pytest.approx(nll)

    def test_mse(self, rng):
        pred = Tensor(rng.normal(size=(3,)))
        target = rng.normal(size=(3,))
        assert F.mse_loss(pred, target).item() == pytest.approx(
            ((pred.data - target) ** 2).mean()
        )


class TestSTE:
    def test_round_ste_forward(self):
        x = Tensor([0.4, 0.6, -1.5])
        np.testing.assert_allclose(F.round_ste(x).data, [0.0, 1.0, -2.0])

    def test_round_ste_identity_gradient(self):
        x = Tensor([0.4, 0.6], requires_grad=True)
        (F.round_ste(x) * np.array([2.0, 3.0])).sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 3.0])

    def test_floor_ste(self):
        x = Tensor([0.9, -0.1], requires_grad=True)
        out = F.floor_ste(x)
        np.testing.assert_allclose(out.data, [0.0, -1.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 1.0])


class TestIm2col:
    def test_shape(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols, (oh, ow) = F.im2col(x, (3, 3), (2, 2), (1, 1))
        assert (oh, ow) == (4, 4)
        assert cols.shape == (2 * 16, 27)

    def test_values_single_window(self, rng):
        x = rng.normal(size=(1, 1, 3, 3))
        cols, _ = F.im2col(x, (3, 3), (1, 1), (0, 0))
        np.testing.assert_allclose(cols[0], x.reshape(-1))
