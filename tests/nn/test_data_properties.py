"""Property tests for the data pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.data import ArrayDataset, DataLoader, RandomCrop, Subset


def make_dataset(n):
    images = np.arange(n * 3 * 4 * 4, dtype=np.float64).reshape(n, 3, 4, 4)
    return ArrayDataset(images, np.arange(n) % 3)


class TestLoaderPartitioning:
    @given(st.integers(1, 40), st.integers(1, 16), st.booleans())
    @settings(max_examples=50, deadline=None)
    def test_batches_partition_dataset(self, n, batch_size, shuffle):
        loader = DataLoader(make_dataset(n), batch_size=batch_size,
                            shuffle=shuffle, seed=0)
        seen = []
        for images, labels in loader:
            assert 1 <= len(labels) <= batch_size
            seen.extend(images[:, 0, 0, 0].tolist())
        # Every sample appears exactly once per epoch.
        assert len(seen) == n
        assert len(set(seen)) == n

    @given(st.integers(1, 40), st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_drop_last_keeps_only_full_batches(self, n, batch_size):
        loader = DataLoader(make_dataset(n), batch_size=batch_size,
                            drop_last=True)
        batches = list(loader)
        assert all(len(b[1]) == batch_size for b in batches)
        assert len(batches) == n // batch_size

    @given(st.integers(1, 40), st.integers(1, 16))
    @settings(max_examples=50, deadline=None)
    def test_len_matches_iteration(self, n, batch_size):
        loader = DataLoader(make_dataset(n), batch_size=batch_size)
        assert len(loader) == len(list(loader))


class TestSubsetProperties:
    @given(st.permutations(list(range(10))))
    @settings(max_examples=25, deadline=None)
    def test_subset_respects_index_order(self, indices):
        ds = make_dataset(10)
        sub = Subset(ds, indices)
        for i, idx in enumerate(indices):
            image, label = sub[i]
            expected_image, expected_label = ds[idx]
            assert label == expected_label
            np.testing.assert_array_equal(image, expected_image)


class TestCropProperties:
    @given(st.integers(0, 4), st.integers(0, 10))
    @settings(max_examples=40, deadline=None)
    def test_crop_content_comes_from_padded_image(self, padding, seed):
        rng = np.random.default_rng(seed)
        image = rng.normal(size=(3, 6, 6))
        crop = RandomCrop(6, padding=padding)
        out = crop(image, rng)
        assert out.shape == (3, 6, 6)
        # Every nonzero value in the crop exists in the original image.
        original_values = set(np.round(image.reshape(-1), 9))
        for v in out.reshape(-1):
            if v != 0.0:
                assert round(float(v), 9) in original_values
