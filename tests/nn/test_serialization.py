"""Checkpoint save/load round trips."""

import os

import numpy as np
import pytest

from repro import models
from repro.nn.serialization import (
    CheckpointError,
    atomic_savez,
    load_checkpoint,
    save_checkpoint,
)
from repro.nn.tensor import Tensor
from repro.quantization import (
    get_bit_config,
    quantize_model,
    quantized_layers,
    set_uniform_bits,
)


class TestFloatCheckpoint:
    def test_roundtrip_outputs_identical(self, tmp_path, rng):
        net = models.SmallConvNet(width=4, rng=np.random.default_rng(0))
        x = Tensor(rng.normal(size=(2, 3, 12, 12)))
        before = net(x).data.copy()
        save_checkpoint(net, tmp_path / "ckpt.npz")
        other = models.SmallConvNet(width=4, rng=np.random.default_rng(7))
        load_checkpoint(other, tmp_path / "ckpt.npz")
        np.testing.assert_allclose(other(x).data, before)

    def test_extra_metadata_roundtrip(self, tmp_path):
        net = models.MLP(4, [4], 2, rng=np.random.default_rng(0))
        save_checkpoint(net, tmp_path / "c.npz", extra={"baseline": 0.91})
        extra = load_checkpoint(
            models.MLP(4, [4], 2, rng=np.random.default_rng(1)),
            tmp_path / "c.npz",
        )
        assert extra == {"baseline": 0.91}


class TestQuantizedCheckpoint:
    def test_bit_config_restored(self, tmp_path):
        net = models.SmallConvNet(width=4, rng=np.random.default_rng(0))
        quantize_model(net, "pact")
        set_uniform_bits(net, 4, 4)
        layers = quantized_layers(net)
        layers[0][1].w_bits = 2
        config = get_bit_config(net)
        save_checkpoint(net, tmp_path / "q.npz")

        other = models.SmallConvNet(width=4, rng=np.random.default_rng(3))
        quantize_model(other, "pact")
        load_checkpoint(other, tmp_path / "q.npz")
        assert get_bit_config(other) == config

    def test_quantized_outputs_identical(self, tmp_path, rng):
        net = models.SmallConvNet(width=4, rng=np.random.default_rng(0))
        quantize_model(net, "pact")
        set_uniform_bits(net, 3, 3)
        x = Tensor(rng.normal(size=(2, 3, 12, 12)))
        net.eval()
        before = net(x).data.copy()
        save_checkpoint(net, tmp_path / "q.npz")

        other = models.SmallConvNet(width=4, rng=np.random.default_rng(9))
        quantize_model(other, "pact")
        load_checkpoint(other, tmp_path / "q.npz")
        other.eval()
        np.testing.assert_allclose(other(x).data, before)

    def test_lsq_step_survives_roundtrip(self, tmp_path, rng):
        net = models.SmallConvNet(width=4, rng=np.random.default_rng(0))
        quantize_model(net, "lsq")
        set_uniform_bits(net, 4, 4)
        net(Tensor(rng.normal(size=(2, 3, 12, 12))))  # initialize steps
        _, layer = quantized_layers(net)[0]
        layer.weight_quantizer.step.data[...] = 0.1234
        save_checkpoint(net, tmp_path / "lsq.npz")

        other = models.SmallConvNet(width=4, rng=np.random.default_rng(2))
        quantize_model(other, "lsq")
        load_checkpoint(other, tmp_path / "lsq.npz")
        _, other_layer = quantized_layers(other)[0]
        assert float(other_layer.weight_quantizer.step.data) == pytest.approx(
            0.1234
        )
        # A forward pass must NOT re-derive the step from statistics.
        other(Tensor(rng.normal(size=(1, 3, 12, 12))))
        assert float(other_layer.weight_quantizer.step.data) == pytest.approx(
            0.1234
        )

    def test_fp_pinned_layers_roundtrip(self, tmp_path):
        net = models.SmallConvNet(width=4, rng=np.random.default_rng(0))
        quantize_model(net, "pact")
        set_uniform_bits(net, 3, 3, first_last_w_bits=None,
                         first_last_a_bits=None)
        save_checkpoint(net, tmp_path / "fp.npz")
        other = models.SmallConvNet(width=4, rng=np.random.default_rng(1))
        quantize_model(other, "pact")
        load_checkpoint(other, tmp_path / "fp.npz")
        layers = quantized_layers(other)
        assert layers[0][1].w_bits is None
        assert layers[1][1].w_bits == 3


class TestCrashSafety:
    def test_atomic_savez_leaves_no_temp_files(self, tmp_path):
        atomic_savez(tmp_path / "a.npz", x=np.arange(3))
        # Archive plus its integrity sidecar — and nothing else (no
        # lingering *.tmp from the atomic-rename dance).
        assert sorted(os.listdir(tmp_path)) == ["a.npz", "a.npz.sha256"]
        with np.load(tmp_path / "a.npz") as archive:
            np.testing.assert_array_equal(archive["x"], np.arange(3))

    def test_atomic_savez_replaces_existing_file(self, tmp_path):
        path = tmp_path / "a.npz"
        atomic_savez(path, x=np.zeros(2))
        atomic_savez(path, x=np.ones(2))
        with np.load(path) as archive:
            np.testing.assert_array_equal(archive["x"], np.ones(2))

    def test_failed_save_preserves_previous_checkpoint(self, tmp_path):
        path = tmp_path / "a.npz"
        atomic_savez(path, x=np.arange(4))

        class Unsavable:
            def __reduce__(self):
                raise RuntimeError("cannot pickle")

        with pytest.raises(Exception):
            atomic_savez(path, x=np.array(Unsavable(), dtype=object))
        # The old file (and its sidecar) is intact; no temp files linger.
        assert sorted(os.listdir(tmp_path)) == ["a.npz", "a.npz.sha256"]
        with np.load(path) as archive:
            np.testing.assert_array_equal(archive["x"], np.arange(4))

    def test_save_checkpoint_is_atomic(self, tmp_path):
        net = models.MLP(4, [4], 2, rng=np.random.default_rng(0))
        save_checkpoint(net, tmp_path / "m.npz")
        save_checkpoint(net, tmp_path / "m.npz")  # overwrite in place
        assert sorted(os.listdir(tmp_path)) == ["m.npz", "m.npz.sha256"]


class TestCheckpointErrors:
    def _quantized(self, seed, width=4):
        net = models.SmallConvNet(width=width, rng=np.random.default_rng(seed))
        quantize_model(net, "pact")
        set_uniform_bits(net, 4, 4)
        return net

    def test_unquantized_target_lists_missing_layers(self, tmp_path):
        net = self._quantized(0)
        save_checkpoint(net, tmp_path / "q.npz")
        plain = models.SmallConvNet(width=4, rng=np.random.default_rng(1))
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(plain, tmp_path / "q.npz")
        message = str(excinfo.value)
        assert "layers in checkpoint but not in model" in message
        # The offending layers are named, with their bit widths.
        assert "conv1" in message
        assert "w=4b" in message

    def test_quantized_target_plain_checkpoint_lists_extras(self, tmp_path):
        plain = models.SmallConvNet(width=4, rng=np.random.default_rng(0))
        save_checkpoint(plain, tmp_path / "p.npz")
        net = self._quantized(1)
        with pytest.raises(
            CheckpointError,
            match="quantized layers in model but not in checkpoint",
        ):
            load_checkpoint(net, tmp_path / "p.npz")

    def test_architecture_mismatch_is_a_checkpoint_error(self, tmp_path):
        net = models.MLP(4, [4], 2, rng=np.random.default_rng(0))
        save_checkpoint(net, tmp_path / "m.npz")
        bigger = models.MLP(4, [4, 4], 2, rng=np.random.default_rng(1))
        with pytest.raises(CheckpointError):
            load_checkpoint(bigger, tmp_path / "m.npz")

    def test_mismatch_leaves_model_bits_untouched(self, tmp_path):
        net = self._quantized(0)
        save_checkpoint(net, tmp_path / "q.npz")
        plain = models.SmallConvNet(width=4, rng=np.random.default_rng(2))
        before = {k: v.copy() for k, v in plain.state_dict().items()}
        with pytest.raises(CheckpointError):
            load_checkpoint(plain, tmp_path / "q.npz")
        after = plain.state_dict()
        for key, value in before.items():
            np.testing.assert_array_equal(after[key], value)
