"""Learning-rate schedules, especially the hybrid plateau-cosine rule."""

import numpy as np
import pytest

from repro.nn.optim import SGD
from repro.nn.schedule import (
    ConstantLR,
    CosineAnnealingLR,
    HybridPlateauCosine,
    StepLR,
)
from repro.nn.tensor import Tensor


def make_opt(lr=0.1):
    p = Tensor(np.zeros(1), requires_grad=True)
    return SGD([p], lr=lr)


class TestBasicSchedules:
    def test_constant(self):
        sched = ConstantLR(make_opt(0.2))
        assert all(sched.step() == 0.2 for _ in range(5))

    def test_step_lr(self):
        sched = StepLR(make_opt(1.0), step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(5)]
        # epochs 1..5 -> decay at epochs 2 and 4
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01, 0.01])

    def test_cosine_endpoints(self):
        opt = make_opt(1.0)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.0)
        lrs = [sched.step() for _ in range(10)]
        assert lrs[0] < 1.0
        assert lrs[-1] == pytest.approx(0.0, abs=1e-12)
        assert all(a >= b for a, b in zip(lrs, lrs[1:]))

    def test_cosine_respects_eta_min(self):
        sched = CosineAnnealingLR(make_opt(1.0), t_max=4, eta_min=0.1)
        for _ in range(10):
            lr = sched.step()
        assert lr == pytest.approx(0.1)

    def test_history_recorded(self):
        sched = ConstantLR(make_opt())
        for _ in range(3):
            sched.step()
        assert len(sched.history) == 3

    def test_scheduler_writes_to_optimizer(self):
        opt = make_opt(1.0)
        sched = StepLR(opt, step_size=1, gamma=0.5)
        sched.step()
        assert opt.lr == 0.5


class TestHybridPlateauCosine:
    def test_constant_while_improving(self):
        sched = HybridPlateauCosine(make_opt(0.1), patience=2)
        lrs = [sched.step(metric=0.5 + 0.1 * i) for i in range(5)]
        assert all(lr == pytest.approx(0.1) for lr in lrs)
        assert sched.num_restarts == 0

    def test_bump_on_plateau(self):
        sched = HybridPlateauCosine(
            make_opt(0.1), patience=2, bump_factor=5.0, cycle_length=4
        )
        sched.step(metric=0.9)
        lrs = [sched.step(metric=0.9) for _ in range(2)]  # plateau
        assert sched.num_restarts == 1
        # The bump fires on the epoch the plateau is detected.
        assert lrs[-1] == pytest.approx(0.5)

    def test_cosine_decays_back_to_base(self):
        sched = HybridPlateauCosine(
            make_opt(0.1), patience=1, bump_factor=4.0, cycle_length=3
        )
        sched.step(metric=0.9)
        lrs = [sched.step(metric=0.9) for _ in range(6)]
        # The cycle peaks at bump*base and cosine-decays back to base
        # (a new cycle may then start, since the metric stays flat).
        assert max(lrs) == pytest.approx(0.4)
        assert lrs[3] == pytest.approx(0.1)
        assert all(a > b for a, b in zip(lrs[:4], lrs[1:4]))

    def test_can_restart_multiple_times(self):
        sched = HybridPlateauCosine(
            make_opt(0.1), patience=1, bump_factor=2.0, cycle_length=1
        )
        for _ in range(10):
            sched.step(metric=0.5)
        assert sched.num_restarts >= 2

    def test_improvement_resets_patience(self):
        sched = HybridPlateauCosine(make_opt(0.1), patience=2)
        sched.step(metric=0.5)
        sched.step(metric=0.5)   # 1 bad epoch
        sched.step(metric=0.9)   # improvement resets
        sched.step(metric=0.9)   # 1 bad epoch
        assert sched.num_restarts == 0

    def test_invalid_bump_rejected(self):
        with pytest.raises(ValueError):
            HybridPlateauCosine(make_opt(), bump_factor=1.0)

    def test_lr_never_below_base(self):
        sched = HybridPlateauCosine(
            make_opt(0.1), patience=1, bump_factor=3.0, cycle_length=2
        )
        lrs = [sched.step(metric=0.5) for _ in range(12)]
        assert min(lrs) >= 0.1 - 1e-12
