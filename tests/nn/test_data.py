"""Data pipeline: datasets, loaders, augmentation transforms."""

import numpy as np
import pytest

from repro.nn.data import (
    ArrayDataset,
    Compose,
    DataLoader,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
    Subset,
)


def make_dataset(n=10, size=8):
    images = np.arange(n * 3 * size * size, dtype=np.float64).reshape(
        n, 3, size, size
    )
    labels = np.arange(n) % 4
    return ArrayDataset(images, labels)


class TestArrayDataset:
    def test_len_and_getitem(self):
        ds = make_dataset(5)
        assert len(ds) == 5
        image, label = ds[2]
        assert image.shape == (3, 8, 8)
        assert label == 2

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((3, 1, 2, 2)), np.zeros(4))

    def test_transform_applied(self):
        ds = make_dataset(3)
        ds.transform = lambda img, rng: img * 0
        image, _ = ds[0]
        assert (image == 0).all()


class TestSubset:
    def test_remaps_indices(self):
        ds = make_dataset(10)
        sub = Subset(ds, [7, 3])
        assert len(sub) == 2
        assert sub[0][1] == 7 % 4


class TestDataLoader:
    def test_batch_shapes(self):
        loader = DataLoader(make_dataset(10), batch_size=4)
        batches = list(loader)
        assert [len(b[1]) for b in batches] == [4, 4, 2]
        assert batches[0][0].shape == (4, 3, 8, 8)

    def test_drop_last(self):
        loader = DataLoader(make_dataset(10), batch_size=4, drop_last=True)
        assert [len(b[1]) for b in loader] == [4, 4]
        assert len(loader) == 2

    def test_len_without_drop(self):
        assert len(DataLoader(make_dataset(10), batch_size=4)) == 3

    def test_shuffle_changes_order_but_not_content(self):
        ds = make_dataset(20)
        loader = DataLoader(ds, batch_size=20, shuffle=True, seed=3)
        labels_a = next(iter(loader))[1]
        plain = DataLoader(ds, batch_size=20)
        labels_b = next(iter(plain))[1]
        assert sorted(labels_a.tolist()) == sorted(labels_b.tolist())
        assert labels_a.tolist() != labels_b.tolist()

    def test_shuffle_varies_between_epochs(self):
        loader = DataLoader(make_dataset(20), batch_size=20, shuffle=True, seed=0)
        first = next(iter(loader))[1].tolist()
        second = next(iter(loader))[1].tolist()
        assert first != second

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(make_dataset(), batch_size=0)

    def test_labels_are_int64(self):
        _, labels = next(iter(DataLoader(make_dataset(4), batch_size=2)))
        assert labels.dtype == np.int64


class TestTransforms:
    def test_random_crop_preserves_shape(self, rng):
        crop = RandomCrop(8, padding=2)
        image = rng.normal(size=(3, 8, 8))
        assert crop(image, rng).shape == (3, 8, 8)

    def test_random_crop_zero_offset_possible(self):
        crop = RandomCrop(4, padding=0)
        image = np.arange(3 * 4 * 4, dtype=float).reshape(3, 4, 4)
        out = crop(image, np.random.default_rng(0))
        np.testing.assert_allclose(out, image)

    def test_flip_probability_one(self, rng):
        flip = RandomHorizontalFlip(p=1.0)
        image = np.arange(3 * 2 * 2, dtype=float).reshape(3, 2, 2)
        np.testing.assert_allclose(flip(image, rng), image[:, :, ::-1])

    def test_flip_probability_zero(self, rng):
        flip = RandomHorizontalFlip(p=0.0)
        image = np.arange(12, dtype=float).reshape(3, 2, 2)
        np.testing.assert_allclose(flip(image, rng), image)

    def test_normalize(self, rng):
        norm = Normalize(mean=[1.0, 2.0, 3.0], std=[2.0, 2.0, 2.0])
        image = np.ones((3, 2, 2))
        out = norm(image, rng)
        np.testing.assert_allclose(out[0], 0.0)
        np.testing.assert_allclose(out[2], -1.0)

    def test_compose_order(self, rng):
        t = Compose([
            lambda img, r: img + 1.0,
            lambda img, r: img * 2.0,
        ])
        np.testing.assert_allclose(t(np.zeros((1, 1, 1)), rng), 2.0)


class TestPrefetch:
    def test_batches_identical_to_serial(self):
        ds = make_dataset(20)
        serial = DataLoader(ds, batch_size=4, shuffle=True, seed=5)
        ahead = DataLoader(ds, batch_size=4, shuffle=True, seed=5,
                           prefetch=True)
        for _ in range(2):  # two epochs: the shuffle RNG stays in sync
            for (si, sl), (ai, al) in zip(serial, ahead):
                np.testing.assert_array_equal(si, ai)
                np.testing.assert_array_equal(sl, al)

    def test_counters_advance_identically(self):
        ds = make_dataset(10)
        loader = DataLoader(ds, batch_size=4, prefetch=True)
        list(loader)
        assert loader.batches_served == 3
        assert loader.samples_served == 10

    def test_source_error_reraises_in_consumer(self):
        ds = make_dataset(10)

        def explode(img, rng):
            raise RuntimeError("bad sample")

        ds.transform = explode
        loader = DataLoader(ds, batch_size=4, prefetch=True)
        with pytest.raises(RuntimeError, match="bad sample"):
            list(loader)

    def test_early_break_does_not_hang(self):
        loader = DataLoader(make_dataset(40), batch_size=4, prefetch=True)
        iterator = iter(loader)
        next(iterator)
        iterator.close()
        iterator._thread.join(timeout=2.0)
        assert not iterator._thread.is_alive()
        # A fresh iteration starts a fresh epoch as usual.
        assert len(list(loader)) == 10

    def test_exhausted_iterator_thread_terminates(self):
        loader = DataLoader(make_dataset(8), batch_size=4, prefetch=True)
        iterator = iter(loader)
        assert len(list(iterator)) == 2
        with pytest.raises(StopIteration):
            next(iterator)
        iterator._thread.join(timeout=2.0)
        assert not iterator._thread.is_alive()
