"""Model summary tables."""

import numpy as np
import pytest

from repro import models
from repro.nn.summary import format_summary, summarize
from repro.nn.tensor import Tensor
from repro.quantization import quantize_model, set_uniform_bits


class TestSummarize:
    def test_rows_for_every_compute_layer(self):
        net = models.SmallConvNet(width=4, rng=np.random.default_rng(0))
        rows = summarize(net, (3, 12, 12))
        assert [r.name for r in rows] == ["conv1", "conv2", "conv3", "fc"]

    def test_output_shapes(self):
        net = models.SmallConvNet(width=4, rng=np.random.default_rng(0))
        rows = summarize(net, (3, 12, 12))
        assert rows[0].output_shape == (1, 4, 12, 12)
        assert rows[-1].output_shape == (1, 10)

    def test_param_counts_include_bias(self):
        net = models.MLP(8, [4], 2, rng=np.random.default_rng(0))
        rows = summarize(net, (2, 2, 2))
        assert rows[0].n_params == 8 * 4 + 4

    def test_bits_reported_for_quantized_model(self):
        net = models.SmallConvNet(width=4, rng=np.random.default_rng(0))
        quantize_model(net, "pact")
        set_uniform_bits(net, 4, 2)
        rows = summarize(net, (3, 12, 12))
        assert all(r.w_bits == 4 and r.a_bits == 2 for r in rows)

    def test_float_model_bits_none(self):
        net = models.SmallConvNet(width=4, rng=np.random.default_rng(0))
        rows = summarize(net, (3, 12, 12))
        assert all(r.w_bits is None for r in rows)

    def test_forward_unaffected(self, rng):
        net = models.SmallConvNet(width=4, rng=np.random.default_rng(0))
        x = Tensor(rng.normal(size=(1, 3, 12, 12)))
        before = net(x).data.copy()
        summarize(net, (3, 12, 12))
        np.testing.assert_allclose(net(x).data, before)


class TestFormat:
    def test_table_contains_totals(self):
        net = models.SmallConvNet(width=4, rng=np.random.default_rng(0))
        rows = summarize(net, (3, 12, 12))
        text = format_summary(rows)
        assert "total" in text
        assert "conv1" in text

    def test_bits_column_toggles(self):
        net = models.SmallConvNet(width=4, rng=np.random.default_rng(0))
        quantize_model(net, "pact")
        set_uniform_bits(net, 3, 3)
        rows = summarize(net, (3, 12, 12))
        with_bits = format_summary(rows, show_bits=True)
        without = format_summary(rows, show_bits=False)
        assert "3/3" in with_bits
        assert "3/3" not in without
