"""Edge cases of the op set: degenerate kernels, strides, tiny inputs."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestConvEdgeCases:
    def test_1x1_conv_is_channel_mix(self, rng):
        x = rng.normal(size=(1, 3, 4, 4))
        w = rng.normal(size=(2, 3, 1, 1))
        out = F.conv2d(Tensor(x), Tensor(w)).data
        expected = np.einsum("nchw,fc->nfhw", x, w[:, :, 0, 0])
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_kernel_equals_input(self, rng):
        x = rng.normal(size=(2, 2, 5, 5))
        w = rng.normal(size=(3, 2, 5, 5))
        out = F.conv2d(Tensor(x), Tensor(w))
        assert out.shape == (2, 3, 1, 1)
        expected = np.einsum("nchw,fchw->nf", x, w)
        np.testing.assert_allclose(out.data[:, :, 0, 0], expected, atol=1e-10)

    def test_stride_larger_than_kernel(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 9, 9)))
        w = Tensor(rng.normal(size=(1, 1, 2, 2)))
        out = F.conv2d(x, w, stride=3)
        assert out.shape == (1, 1, 3, 3)

    def test_single_pixel_input(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 1, 1)))
        w = Tensor(rng.normal(size=(3, 2, 1, 1)))
        assert F.conv2d(x, w).shape == (1, 3, 1, 1)

    def test_batch_of_one(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 4, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(1, 1, 3, 3)), requires_grad=True)
        (F.conv2d(x, w, padding=1) ** 2).sum().backward()
        assert x.grad is not None and w.grad is not None


class TestPoolEdgeCases:
    def test_pool_kernel_equals_input(self, rng):
        x = rng.normal(size=(1, 2, 4, 4))
        out = F.max_pool2d(Tensor(x), 4).data
        np.testing.assert_allclose(out[0, :, 0, 0], x[0].max(axis=(1, 2)))

    def test_overlapping_stride_one_pool(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 5, 5)), requires_grad=True)
        out = F.max_pool2d(x, 3, stride=1)
        assert out.shape == (1, 1, 3, 3)
        out.sum().backward()
        assert np.isfinite(x.grad).all()

    def test_negative_inputs_with_padding(self):
        # -inf padding must never win the max.
        x = Tensor(np.full((1, 1, 3, 3), -5.0))
        out = F.max_pool2d(x, 3, stride=1, padding=1).data
        assert (out == -5.0).all()


class TestLossEdgeCases:
    def test_cross_entropy_single_sample(self):
        logits = Tensor(np.array([[2.0, -1.0]]))
        loss = F.cross_entropy(logits, np.array([0]))
        assert 0 < loss.item() < 1

    def test_cross_entropy_perfect_prediction(self):
        logits = Tensor(np.array([[100.0, 0.0]]))
        assert F.cross_entropy(logits, np.array([0])).item() < 1e-10

    def test_cross_entropy_two_classes_symmetry(self):
        logits = Tensor(np.array([[1.0, -1.0], [-1.0, 1.0]]))
        l1 = F.cross_entropy(logits, np.array([0, 1])).item()
        l2 = F.cross_entropy(logits, np.array([1, 0])).item()
        assert l1 < l2

    def test_softmax_single_class(self):
        out = F.softmax(Tensor(np.array([[3.0]]))).data
        np.testing.assert_allclose(out, [[1.0]])


class TestSTEEdgeCases:
    def test_round_half_even_matches_numpy(self):
        x = Tensor(np.array([0.5, 1.5, 2.5, -0.5]))
        np.testing.assert_allclose(
            F.round_ste(x).data, np.round(x.data)
        )

    def test_round_ste_through_chain(self, rng):
        x = Tensor(rng.normal(size=(10,)), requires_grad=True)
        out = (F.round_ste(x * 4) / 4 - x) ** 2
        out.sum().backward()
        assert np.isfinite(x.grad).all()
