"""Weight initializer statistics and fan computation."""

import numpy as np
import pytest

from repro.nn import init


class TestFans:
    def test_linear_fans(self):
        assert init.compute_fans((10, 20)) == (20, 10)

    def test_conv_fans(self):
        # (out, in, kh, kw): fan_in = in * kh * kw
        assert init.compute_fans((8, 4, 3, 3)) == (36, 72)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            init.compute_fans((5,))


class TestDistributions:
    def test_kaiming_normal_std(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_normal((256, 128), rng=rng)
        expected = np.sqrt(2.0 / 128)
        assert w.std() == pytest.approx(expected, rel=0.05)

    def test_kaiming_uniform_bound(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_uniform((64, 64), rng=rng)
        bound = np.sqrt(2.0) * np.sqrt(3.0 / 64)
        assert np.abs(w).max() <= bound

    def test_xavier_normal_std(self):
        rng = np.random.default_rng(0)
        w = init.xavier_normal((200, 200), rng=rng)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 400), rel=0.05)

    def test_xavier_uniform_bound(self):
        rng = np.random.default_rng(0)
        w = init.xavier_uniform((64, 64), rng=rng)
        assert np.abs(w).max() <= np.sqrt(6.0 / 128)

    def test_deterministic_given_rng(self):
        a = init.kaiming_normal((4, 4), rng=np.random.default_rng(7))
        b = init.kaiming_normal((4, 4), rng=np.random.default_rng(7))
        np.testing.assert_allclose(a, b)

    def test_set_seed_controls_default(self):
        init.set_seed(42)
        a = init.kaiming_normal((3, 3))
        init.set_seed(42)
        b = init.kaiming_normal((3, 3))
        np.testing.assert_allclose(a, b)
