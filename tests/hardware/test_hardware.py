"""MAC energy model, shape-traced MAC counts, network power rollup."""

import numpy as np
import pytest

from repro import models
from repro.hardware import (
    NODE_32NM,
    NODE_32NM_SYNTH,
    NODE_45NM,
    mac_energy_pj,
    network_power,
    power_of_config,
    trace_layer_macs,
)
from repro.quantization import quantize_model, quantized_layers, set_uniform_bits


class TestMacEnergy:
    def test_energy_monotone_in_bits(self):
        energies = [mac_energy_pj(b, b) for b in (2, 3, 4, 8, 16)]
        assert all(a < b for a, b in zip(energies, energies[1:]))

    def test_fp32_most_expensive(self):
        assert mac_energy_pj(None, None) > mac_energy_pj(16, 16)

    def test_32_bit_ints_treated_as_fp(self):
        assert mac_energy_pj(32, 32) == mac_energy_pj(None, None)

    def test_int8_anchor(self):
        # Published int8 MAC at 45nm is roughly 0.2-0.3 pJ.
        assert 0.15 < mac_energy_pj(8, 8, node=NODE_45NM) < 0.35

    def test_fp_to_int8_ratio(self):
        # Published fp32/int8 MAC energy ratio is ~20x (datapath anchor).
        ratio = mac_energy_pj(None, None, node=NODE_45NM) / mac_energy_pj(
            8, 8, node=NODE_45NM
        )
        assert 10 < ratio < 30

    def test_32nm_cheaper_than_45nm(self):
        assert mac_energy_pj(8, 8, node=NODE_32NM) < mac_energy_pj(
            8, 8, node=NODE_45NM
        )

    def test_synth_node_fp_premium(self):
        assert NODE_32NM_SYNTH.fp32_mac > NODE_32NM.fp32_mac

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            mac_energy_pj(0, 4)

    def test_asymmetric_operands(self):
        assert mac_energy_pj(2, 8) == mac_energy_pj(8, 2)


class TestMacTracing:
    def test_resnet20_mac_count(self):
        # Published ResNet-20 @ 32x32 is ~40.6M MACs.
        net = models.resnet20(rng=np.random.default_rng(0))
        total = sum(e.macs for e in trace_layer_macs(net, (3, 32, 32)))
        assert 38e6 < total < 43e6

    def test_layer_count(self):
        net = models.resnet20(width_mult=0.25, rng=np.random.default_rng(0))
        assert len(trace_layer_macs(net, (3, 16, 16))) == 22

    def test_works_on_quantized_model(self):
        net = models.SmallConvNet(width=4, rng=np.random.default_rng(0))
        quantize_model(net, "pact")
        set_uniform_bits(net, 4, 4)
        entries = trace_layer_macs(net, (3, 12, 12))
        assert all(e.w_bits == 4 for e in entries)

    def test_forward_unaffected_after_tracing(self, rng):
        from repro.nn.tensor import Tensor

        net = models.SmallConvNet(width=4, rng=np.random.default_rng(0))
        x = Tensor(rng.normal(size=(1, 3, 12, 12)))
        before = net(x).data.copy()
        trace_layer_macs(net, (3, 12, 12))
        np.testing.assert_allclose(net(x).data, before)

    def test_linear_macs(self):
        net = models.MLP(12, [6], 4, rng=np.random.default_rng(0))
        entries = trace_layer_macs(net, (3, 2, 2))
        assert [e.macs for e in entries] == [12 * 6, 6 * 4]

    def test_stride_reduces_macs(self):
        from repro import nn

        a = nn.Sequential(nn.Conv2d(2, 2, 3, stride=1, padding=1))
        b = nn.Sequential(nn.Conv2d(2, 2, 3, stride=2, padding=1))
        macs_a = trace_layer_macs(a, (2, 8, 8))[0].macs
        macs_b = trace_layer_macs(b, (2, 8, 8))[0].macs
        assert macs_b == macs_a // 4


class TestNetworkPower:
    @pytest.fixture()
    def quantized_resnet(self):
        net = models.resnet20(width_mult=0.5, rng=np.random.default_rng(0))
        quantize_model(net, "pact")
        return net

    def test_power_scales_with_fps(self, quantized_resnet):
        set_uniform_bits(quantized_resnet, 4, 4)
        p30 = network_power(quantized_resnet, (3, 16, 16), fps=30).total_watts
        p60 = network_power(quantized_resnet, (3, 16, 16), fps=60).total_watts
        assert p60 == pytest.approx(2 * p30)

    def test_quantized_cheaper_than_fp(self, quantized_resnet):
        fp = network_power(quantized_resnet, (3, 16, 16)).total_watts
        set_uniform_bits(quantized_resnet, 2, 2)
        quant = network_power(quantized_resnet, (3, 16, 16)).total_watts
        assert quant < fp / 10

    def test_power_of_config_validates_length(self, quantized_resnet):
        with pytest.raises(ValueError):
            power_of_config(quantized_resnet, (3, 16, 16), [(4, 4)])

    def test_fig5_ordering_fully_vs_partially_quantized(self, quantized_resnet):
        """The paper's headline: fully quantized < partially quantized."""
        n = len(trace_layer_macs(quantized_resnet, (3, 16, 16)))
        partial = [(None, None)] + [(2, 2)] * (n - 2) + [(None, None)]
        full_mp = [(6, 6)] + [(2, 2)] * (n - 2) + [(2, 2)]
        p_partial = power_of_config(
            quantized_resnet, (3, 16, 16), partial, node=NODE_32NM_SYNTH
        ).total_watts
        p_full = power_of_config(
            quantized_resnet, (3, 16, 16), full_mp, node=NODE_32NM_SYNTH
        ).total_watts
        assert p_full < p_partial

    def test_edge_to_middle_ratio_in_paper_band(self):
        """fp edges draw 4-56x the whole quantized middle (ResNet20)."""
        net = models.resnet20(rng=np.random.default_rng(0))
        quantize_model(net, "pact")
        n = len(trace_layer_macs(net, (3, 32, 32)))
        partial = [(None, None)] + [(2, 2)] * (n - 2) + [(None, None)]
        report = power_of_config(net, (3, 32, 32), partial,
                                 node=NODE_32NM_SYNTH)
        assert 4.0 <= report.edge_to_middle_ratio <= 56.0

    def test_report_breakdown_sums(self, quantized_resnet):
        set_uniform_bits(quantized_resnet, 4, 4)
        report = network_power(quantized_resnet, (3, 16, 16))
        assert report.edge_watts + report.middle_watts == pytest.approx(
            report.total_watts
        )
        assert len(report.by_layer()) == len(report.layers)
