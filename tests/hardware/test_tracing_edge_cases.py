"""Shape tracing through non-trivial topologies (maxpool stems, MLPs)."""

import numpy as np

from repro import models
from repro.hardware import trace_layer_macs
from repro.nn.summary import summarize


class TestFullStemTracing:
    def test_resnet18_with_maxpool_stem(self):
        net = models.resnet18(
            num_classes=10, width_mult=0.125, small_input=False,
            rng=np.random.default_rng(0),
        )
        entries = trace_layer_macs(net, (3, 64, 64))
        # stem + 16 block convs + 3 projections + fc = 21
        assert len(entries) == 21
        # The stem conv sees the full 64x64 input at stride 2.
        stem = entries[0]
        assert stem.name == "conv1"
        expected = 32 * 32 * 7 * 7 * 3 * net.conv1.out_channels
        assert stem.macs == expected

    def test_small_input_stem_has_more_spatial_macs_per_channel(self):
        full = models.resnet18(num_classes=10, width_mult=0.125,
                               small_input=False,
                               rng=np.random.default_rng(0))
        small = models.resnet18(num_classes=10, width_mult=0.125,
                                small_input=True,
                                rng=np.random.default_rng(0))
        # Same image: the small-input stem (3x3 stride 1) keeps full
        # resolution into layer1, the 7x7/2 + maxpool stem does not.
        full_l1 = trace_layer_macs(full, (3, 32, 32))[1]
        small_l1 = trace_layer_macs(small, (3, 32, 32))[1]
        assert small_l1.macs > full_l1.macs

    def test_bottleneck_macs_consistent_with_summary(self):
        net = models.resnet50(
            num_classes=10, width_mult=0.0625, small_input=True,
            rng=np.random.default_rng(0),
        )
        traced = {e.name: e.macs for e in trace_layer_macs(net, (3, 16, 16))}
        summarized = {
            r.name: r.macs for r in summarize(net, (3, 16, 16))
        }
        assert traced == summarized

    def test_lenet_with_pools(self):
        net = models.LeNet(rng=np.random.default_rng(0))
        entries = trace_layer_macs(net, (3, 32, 32))
        names = [e.name for e in entries]
        assert names == ["conv1", "conv2", "fc1", "fc2", "fc3"]
        # conv2 runs on the pooled 14x14 map -> 10x10 output.
        assert entries[1].macs == 10 * 10 * 5 * 5 * 6 * 16
