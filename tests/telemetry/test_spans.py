"""Span tracer: nesting, exception safety, and the null fast path."""

import pytest

from repro.telemetry import (
    JsonlSink,
    MemorySink,
    NullTracer,
    SpanTracer,
    read_events,
)


def test_nested_spans_record_parent_and_depth():
    sink = MemorySink()
    tracer = SpanTracer(sink)
    with tracer.span("run") as outer:
        with tracer.span("probe", expert="conv1") as inner:
            assert tracer.active_depth == 2
        assert tracer.active_depth == 1
    assert tracer.active_depth == 0

    # Spans are emitted on exit, so the inner one lands first.
    inner_ev, outer_ev = sink.events
    assert inner_ev["name"] == "probe"
    assert inner_ev["parent"] == outer.span_id
    assert inner_ev["depth"] == 1
    assert inner_ev["attrs"] == {"expert": "conv1"}
    assert outer_ev["name"] == "run"
    assert outer_ev["parent"] is None
    assert outer_ev["depth"] == 0
    assert outer_ev["duration_s"] >= inner_ev["duration_s"]
    assert inner.span_id != outer.span_id


def test_siblings_share_a_parent():
    sink = MemorySink()
    tracer = SpanTracer(sink)
    with tracer.span("step") as step:
        with tracer.span("probe"):
            pass
        with tracer.span("recover"):
            pass
    probe, recover, _ = sink.events
    assert probe["parent"] == step.span_id
    assert recover["parent"] == step.span_id


def test_exception_is_recorded_and_propagated():
    sink = MemorySink()
    tracer = SpanTracer(sink)
    with pytest.raises(RuntimeError, match="diverged"):
        with tracer.span("recover"):
            raise RuntimeError("diverged")
    (event,) = sink.events
    assert event["error"] == "RuntimeError: diverged"
    # The stack unwound despite the exception.
    assert tracer.active_depth == 0


def test_exception_inside_nested_span_unwinds_cleanly():
    sink = MemorySink()
    tracer = SpanTracer(sink)
    with pytest.raises(ValueError):
        with tracer.span("run"):
            with tracer.span("step"):
                raise ValueError("boom")
    assert tracer.active_depth == 0
    step_ev, run_ev = sink.events
    assert "error" in step_ev and "error" in run_ev


def test_null_tracer_is_allocation_free():
    tracer = NullTracer()
    a = tracer.span("x", attr=1)
    b = tracer.span("y")
    assert a is b  # one shared no-op span object
    with a:
        assert tracer.active_depth == 0
    with pytest.raises(KeyError):
        with tracer.span("z"):
            raise KeyError("never swallowed")


def test_spans_round_trip_through_jsonl(tmp_path):
    path = tmp_path / "events.jsonl"
    tracer = SpanTracer(JsonlSink(path))
    with tracer.span("run"):
        with tracer.span("probe", to_bits=4):
            pass
    events = read_events(path)
    assert [e["name"] for e in events] == ["probe", "run"]
    assert events[0]["attrs"] == {"to_bits": 4}
    assert all(e["type"] == "span" for e in events)


def test_read_events_tolerates_torn_tail(tmp_path):
    path = tmp_path / "events.jsonl"
    tracer = SpanTracer(JsonlSink(path))
    with tracer.span("a"):
        pass
    with open(path, "a", encoding="utf-8") as f:
        f.write('{"type": "span", "name": "tor')  # crash mid-write
    events = read_events(path)
    assert [e["name"] for e in events] == ["a"]
