"""Reporting: exclusive stage accounting, trajectory, rendering."""

import pytest

from repro.telemetry import (
    STAGES,
    Telemetry,
    format_report,
    load_run,
    stage_breakdown,
    trajectory,
    write_trajectory_svg,
)


def _make_run(tmp_path, build):
    """Run ``build(telemetry)`` against a real file-backed handle and
    load the directory back as a RunTelemetry."""
    t = Telemetry.create(directory=tmp_path, log_level="silent")
    build(t)
    t.close()
    return load_run(tmp_path)


class TestStageBreakdown:
    def test_nested_stage_charged_to_outermost_only(self, tmp_path):
        def build(t):
            with t.span("run"):
                with t.span("recover"):
                    with t.span("eval"):  # nested stage: not double counted
                        pass
                with t.span("eval"):
                    pass

        run = _make_run(tmp_path, build)
        breakdown = stage_breakdown(run)
        assert breakdown["stages"]["recover"].count == 1
        # Only the top-level eval is charged; the one inside recover is
        # already part of recover's wall-clock.
        assert breakdown["stages"]["eval"].count == 1
        assert breakdown["covered_s"] <= breakdown["total_s"] + 1e-9
        assert 0.0 < breakdown["coverage"] <= 1.0

    def test_totals_come_from_the_run_span(self, tmp_path):
        def build(t):
            with t.span("run"):
                with t.span("probe"):
                    pass

        run = _make_run(tmp_path, build)
        breakdown = stage_breakdown(run)
        run_span = next(s for s in run.spans if s["name"] == "run")
        assert breakdown["total_s"] == pytest.approx(
            run_span["duration_s"]
        )

    def test_every_declared_stage_is_reported(self, tmp_path):
        # A run that crashed before any stage: events exist, spans don't.
        run = _make_run(tmp_path, lambda t: t.event("started"))
        breakdown = stage_breakdown(run)
        assert set(breakdown["stages"]) == set(STAGES)
        assert breakdown["coverage"] == 0.0  # no run span at all

    def test_stage_stats_accumulate(self, tmp_path):
        def build(t):
            with t.span("run"):
                for _ in range(3):
                    with t.span("probe"):
                        pass

        run = _make_run(tmp_path, build)
        probe = stage_breakdown(run)["stages"]["probe"]
        assert probe.count == 3
        assert probe.total_s >= probe.max_s >= probe.mean_s >= 0.0


class TestTrajectory:
    def test_rows_come_from_step_complete_events(self, tmp_path):
        def build(t):
            t.event(
                "step_complete", step=1, layer="conv2", from_bits=8,
                to_bits=4, post_quant_accuracy=0.6,
                recovered_accuracy=0.8, compression=2.0,
                recovery_epochs=1,
            )
            t.event(
                "step_complete", step=0, layer="conv1", from_bits=None,
                to_bits=8, post_quant_accuracy=0.7,
                recovered_accuracy=0.85, compression=1.5,
                recovery_epochs=2,
            )

        run = _make_run(tmp_path, build)
        rows = trajectory(run)
        assert [r["step"] for r in rows] == [0, 1]  # sorted by step
        assert rows[0]["layer"] == "conv1"
        assert rows[1]["valley"] == 0.6
        assert rows[1]["peak"] == 0.8


class TestFormatReport:
    def _full_run(self, tmp_path):
        def build(t):
            with t.span("run"):
                with t.span("probe"):
                    pass
            t.event(
                "step_complete", step=0, layer="conv1", from_bits=None,
                to_bits=4, post_quant_accuracy=0.5,
                recovered_accuracy=0.75, compression=3.0,
                recovery_epochs=1,
            )
            t.counter("ccq.probe_divergence", expert="conv1").inc()
            t.histogram("ccq.probe_loss").observe(1.25)

        return _make_run(tmp_path, build)

    def test_report_contains_all_sections(self, tmp_path):
        text = format_report(self._full_run(tmp_path))
        assert "per-stage wall-clock breakdown" in text
        for stage in STAGES:
            assert stage in text
        assert "accuracy / compression trajectory" in text
        assert "conv1" in text and "None->4b" in text
        assert "resilience counters" in text
        assert "ccq.probe_divergence expert=conv1: 1" in text
        assert "histograms (p50 / p90 / p99)" in text
        assert "ccq.probe_loss" in text

    def test_svg_written_for_runs_with_steps(self, tmp_path):
        run = self._full_run(tmp_path)
        out = tmp_path / "traj.svg"
        assert write_trajectory_svg(run, out) == out
        svg = out.read_text()
        assert svg.startswith("<svg") or "<svg" in svg
        assert "recovered accuracy" in svg

    def test_svg_skipped_without_steps(self, tmp_path):
        run = _make_run(tmp_path, lambda t: t.event("nothing"))
        assert write_trajectory_svg(run, tmp_path / "t.svg") is None
        assert not (tmp_path / "t.svg").exists()


class TestLoadRun:
    def test_missing_directory_raises_with_hint(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="telemetry-dir"):
            load_run(tmp_path / "never_ran")

    def test_metrics_are_optional(self, tmp_path):
        def build(t):
            with t.span("run"):
                pass

        t = Telemetry.create(directory=tmp_path, log_level="silent")
        build(t)
        t.sink.flush()
        t.sink.close()  # close the sink only: no metrics.json written
        (tmp_path / "metrics.json").unlink(missing_ok=True)
        (tmp_path / "metrics.csv").unlink(missing_ok=True)
        run = load_run(tmp_path)
        assert run.metrics == {}
        assert len(run.spans) == 1
