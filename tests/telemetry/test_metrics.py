"""Metrics registry: percentiles, label cardinality, snapshot round-trip."""

import json
import math

import pytest

from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter()
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)


class TestGauge:
    def test_set_and_add(self):
        g = Gauge()
        assert g.value is None
        g.add(2.0)  # add on an unset gauge starts from zero
        assert g.value == 2.0
        g.set(-1.5)
        assert g.value == -1.5


class TestHistogramPercentiles:
    def test_empty_histogram_has_no_stats(self):
        h = Histogram()
        assert h.percentile(50) is None
        summary = h.summary()
        assert summary["count"] == 0
        assert summary["p99"] is None
        assert summary["mean"] is None

    def test_single_value_is_every_percentile(self):
        h = Histogram()
        h.observe(7.0)
        assert h.percentile(0) == 7.0
        assert h.percentile(50) == 7.0
        assert h.percentile(100) == 7.0

    def test_interpolated_percentiles(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        # rank = 0.5 * 3 = 1.5 -> halfway between 2 and 3
        assert h.percentile(50) == pytest.approx(2.5)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 4.0

    def test_percentile_bounds_are_validated(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(-1)
        with pytest.raises(ValueError):
            h.percentile(100.1)

    def test_non_finite_observations_are_dropped(self):
        h = Histogram()
        h.observe(float("nan"))
        h.observe(float("inf"))
        h.observe(1.0)
        assert h.count == 1
        assert math.isfinite(h.summary()["p99"])

    def test_summary_statistics(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        s = h.summary()
        assert s["count"] == 100
        assert s["min"] == 1.0
        assert s["max"] == 100.0
        assert s["mean"] == pytest.approx(50.5)
        assert s["p50"] == pytest.approx(50.5)
        assert s["p90"] == pytest.approx(90.1)
        assert s["p99"] == pytest.approx(99.01)


class TestRegistry:
    def test_same_name_and_labels_share_a_series(self):
        reg = MetricsRegistry()
        reg.counter("x", layer="a").inc()
        reg.counter("x", layer="a").inc()
        assert reg.counter("x", layer="a").value == 2.0
        # Label order must not matter.
        reg.counter("y", a="1", b="2").inc()
        assert reg.counter("y", b="2", a="1").value == 1.0

    def test_type_conflicts_raise(self):
        reg = MetricsRegistry()
        reg.counter("ccq.steps").inc()
        with pytest.raises(TypeError):
            reg.histogram("ccq.steps")

    def test_timer_observes_into_histogram(self):
        reg = MetricsRegistry()
        with reg.timer("t"):
            pass
        assert reg.histogram("t").count == 1
        assert reg.histogram("t").values[0] >= 0.0

    def test_label_cardinality_cap_collapses_to_overflow(self):
        reg = MetricsRegistry(max_series_per_name=4)
        for i in range(10):
            reg.counter("hot", layer=f"l{i}").inc()
        snap = reg.snapshot()
        series = [e for e in snap["counters"] if e["name"] == "hot"]
        # 4 real series + 1 shared overflow series.
        assert len(series) == 5
        overflow = [e for e in series if e["labels"].get("overflow")]
        assert len(overflow) == 1
        assert overflow[0]["value"] == 6.0
        assert snap["dropped_series"] == 6

    def test_snapshot_round_trips_through_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("runs").inc(3)
        reg.gauge("acc", split="val").set(0.91)
        for v in (0.1, 0.2, 0.3):
            reg.histogram("loss").observe(v)
        path = tmp_path / "metrics.json"
        reg.write_json(path)
        loaded = json.loads(path.read_text())
        assert loaded["written_at"] > 0
        # Everything except the write stamp matches the live snapshot.
        loaded.pop("written_at")
        assert loaded == json.loads(json.dumps(reg.snapshot()))
        assert loaded["counters"][0] == {
            "name": "runs", "labels": {}, "value": 3.0,
        }
        assert loaded["gauges"][0]["labels"] == {"split": "val"}
        hist = loaded["histograms"][0]
        assert hist["count"] == 3
        assert hist["p50"] == pytest.approx(0.2)

    def test_csv_export_covers_every_series(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("runs").inc()
        reg.histogram("loss").observe(1.0)
        path = tmp_path / "metrics.csv"
        reg.write_csv(path)
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("name,labels,type,field,value")
        names = {line.split(",")[0] for line in lines[1:]}
        assert names == {"runs", "loss"}
        # Histogram expands into one row per summary field.
        assert sum(1 for line in lines if line.startswith("loss,")) == 8


class TestMerge:
    def test_counters_add_and_gauges_take_the_other_value(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("evals").inc(3)
        b.counter("evals").inc(4)
        a.gauge("bits").set(8)
        b.gauge("bits").set(6)
        a.gauge("keep").set(1.0)
        b.gauge("keep")  # never set: value None must not clobber
        a.merge(b)
        snap = a.snapshot()
        assert snap["counters"][0]["value"] == 7.0
        gauges = {g["name"]: g["value"] for g in snap["gauges"]}
        assert gauges["bits"] == 6.0
        assert gauges["keep"] == 1.0

    def test_merged_histogram_percentiles_are_exact(self):
        """Post-merge percentiles must equal those of a registry that
        observed every value directly — merge is full-fidelity, not a
        summary-of-summaries."""
        a, b, reference = (
            MetricsRegistry(), MetricsRegistry(), MetricsRegistry()
        )
        values_a = [float(v) for v in range(0, 50)]
        values_b = [float(v) for v in range(200, 275)]
        for v in values_a:
            a.histogram("latency").observe(v)
            reference.histogram("latency").observe(v)
        for v in values_b:
            b.histogram("latency").observe(v)
            reference.histogram("latency").observe(v)
        a.merge(b)
        merged = a.histogram("latency")
        expected = reference.histogram("latency")
        for q in (0.5, 0.9, 0.99):
            assert merged.percentile(q) == expected.percentile(q)
        assert merged.summary() == expected.summary()

    def test_label_collisions_fold_into_the_same_series(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("evals", worker="0").inc(2)
        b.counter("evals", worker="0").inc(5)
        b.counter("evals", worker="1").inc(1)
        a.merge(b)
        values = {
            tuple(sorted(labels.items())): metric.value
            for name, kind, labels, metric in a.series()
            if name == "evals"
        }
        assert values[(("worker", "0"),)] == 7.0
        assert values[(("worker", "1"),)] == 1.0

    def test_kind_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc()
        b.gauge("x").set(1.0)
        with pytest.raises(TypeError):
            a.merge(b)

    def test_dropped_series_accumulate(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.dropped_series = 2
        b.dropped_series = 3
        a.merge(b)
        assert a.dropped_series == 5


class TestStateRoundTrip:
    def test_state_preserves_raw_histogram_values(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("n", kind="a").inc(4)
        reg.gauge("g").set(2.5)
        for v in (1.0, 2.0, 9.0):
            reg.histogram("h").observe(v)
        path = tmp_path / "state.json"
        reg.write_state(path)
        rebuilt = MetricsRegistry.read_state(path)
        assert rebuilt.snapshot() == reg.snapshot()
        # Raw values survive, so further merges stay exact.
        assert rebuilt.histogram("h").values == [1.0, 2.0, 9.0]

    def test_from_state_rejects_unknown_format(self):
        with pytest.raises(ValueError):
            MetricsRegistry.from_state({"format": "bogus"})


class TestCardinalityOverflowSelfMetric:
    def test_overflow_increments_dropped_series_metric(self, capsys):
        reg = MetricsRegistry(max_series_per_name=2)
        for i in range(5):
            reg.counter("hot", key=str(i)).inc()
        snap = reg.snapshot()
        dropped = [
            c for c in snap["counters"]
            if c["name"] == "telemetry.dropped_series"
        ]
        assert len(dropped) == 1
        assert dropped[0]["labels"] == {"metric": "hot"}
        assert dropped[0]["value"] == 3.0
        assert snap["dropped_series"] == 3
        # The warning is written once per metric name, not per drop.
        err = capsys.readouterr().err
        assert err.count("label-cardinality cap") == 1


class TestPrometheusText:
    def test_exposition_format(self):
        from repro.telemetry import prometheus_text

        reg = MetricsRegistry()
        reg.counter("ccq.steps").inc(3)
        reg.gauge("ccq.layer_bits", layer="conv1").set(6)
        for v in (0.1, 0.2, 0.3):
            reg.histogram("probe.eval_s").observe(v)
        text = prometheus_text(reg.snapshot())
        assert "# TYPE ccq_steps counter" in text
        assert "ccq_steps 3" in text
        assert 'ccq_layer_bits{layer="conv1"} 6' in text
        assert "# TYPE probe_eval_s summary" in text
        assert 'probe_eval_s{quantile="0.5"} 0.2' in text
        assert "probe_eval_s_count 3" in text
        assert text.endswith("\n")

    def test_label_values_are_escaped(self):
        from repro.telemetry import prometheus_text

        reg = MetricsRegistry()
        reg.counter("c", path='a"b\\c\nd').inc()
        text = prometheus_text(reg.snapshot())
        assert '\\"' in text and "\\\\" in text and "\\n" in text
