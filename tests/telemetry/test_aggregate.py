"""Cross-process trace aggregation: namespacing, lanes, reassembly.

The robustness contract under test: worker files are written by
processes the supervisor kills on purpose, so truncated tails,
missing snapshots and out-of-order arrival must degrade to "less
data", never to an exception or a mis-spliced trace.
"""

import json

import pytest

from repro.telemetry import (
    MetricsRegistry,
    Telemetry,
    assemble_traces,
    fanout_summary,
    load_aggregated_run,
    merge_worker_metrics,
    namespace_worker_events,
    pool_summary,
    worker_lanes,
)


def span(name, span_id, ts, duration, parent=None, attrs=None):
    event = {
        "type": "span", "name": name, "id": span_id, "parent": parent,
        "depth": 0, "ts": ts, "mono": ts, "duration_s": duration,
    }
    if attrs:
        event["attrs"] = attrs
    return event


def write_jsonl(path, events):
    with open(path, "w", encoding="utf-8") as f:
        for event in events:
            f.write(json.dumps(event) + "\n")


@pytest.fixture()
def run_dir(tmp_path):
    """A synthetic parent run with two fan-out rounds."""
    telemetry = Telemetry.create(directory=tmp_path, log_level="error")
    with telemetry.span("run"):
        with telemetry.span("probe_fanout", step=0):
            pass
        with telemetry.span("probe_fanout", step=1):
            pass
    telemetry.event(
        "fanout_report", step=0, attempted=4, completed=3, salvaged=1,
        requeued=1, respawned=1, quarantined=0, missing=0,
        degraded=False, deadline_s=2.0, ema_batch_s=0.05,
    )
    telemetry.event(
        "fanout_report", step=1, attempted=4, completed=4, salvaged=0,
        requeued=0, respawned=0, quarantined=0, missing=0,
        degraded=False, deadline_s=1.5, ema_batch_s=0.04,
    )
    telemetry.close()
    return tmp_path


class TestNamespacing:
    def test_span_ids_become_worker_strings(self):
        events = namespace_worker_events(
            3, [span("worker_eval", 17, 10.0, 0.5, parent=2)]
        )
        assert events[0]["id"] == "w3:17"
        assert events[0]["parent"] == "w3:2"
        assert events[0]["worker"] == 3

    def test_parent_span_attr_reparents_across_processes(self):
        events = namespace_worker_events(
            1,
            [span("worker_eval", 4, 10.0, 0.5,
                  attrs={"parent_span": 42})],
        )
        # The parent is the *parent process's* raw span id, untouched.
        assert events[0]["parent"] == 42
        assert events[0]["id"] == "w1:4"

    def test_non_span_events_only_gain_worker_field(self):
        events = namespace_worker_events(
            2, [{"type": "log", "level": "info", "msg": "hi", "ts": 1.0}]
        )
        assert events[0]["worker"] == 2
        assert "id" not in events[0]


class TestTraceReassembly:
    def make_worker_files(self, run_dir, fanout_ids):
        """Two workers, each owning evals of both rounds — written
        deliberately out of time order within each file."""
        first, second = fanout_ids
        write_jsonl(run_dir / "events-w0.jsonl", [
            span("worker_eval", 2, 20.0, 0.4,
                 attrs={"parent_span": second, "status": "ok",
                        "queue_wait_s": 0.01}),
            span("worker_eval", 1, 10.0, 0.3,
                 attrs={"parent_span": first, "status": "ok",
                        "queue_wait_s": 0.02}),
            span("worker_sync", 0, 5.0, 0.1),
        ])
        write_jsonl(run_dir / "events-w1.jsonl", [
            span("worker_eval", 1, 10.5, 0.2,
                 attrs={"parent_span": first, "status": "error",
                        "queue_wait_s": 0.05}),
            # Orphan: references a fan-out span that never closed
            # (parent crashed mid-round) — must land in no trace.
            span("worker_eval", 2, 30.0, 0.2,
                 attrs={"parent_span": 999_999, "status": "ok"}),
        ])

    def fanout_ids(self, agg):
        return [
            s["id"] for s in agg.run.spans
            if s["name"] == "probe_fanout"
        ]

    def test_children_attach_to_their_fanout_round_in_ts_order(
        self, run_dir
    ):
        agg = load_aggregated_run(run_dir)
        self.make_worker_files(run_dir, self.fanout_ids(agg))
        agg = load_aggregated_run(run_dir)

        traces = assemble_traces(agg)
        assert len(traces) == 2
        first, second = traces
        # Round 0 got one eval from each worker, sorted by wall clock
        # even though the files interleave differently.
        assert [c["worker"] for c in first["children"]] == [0, 1]
        assert [c["ts"] for c in first["children"]] == [10.0, 10.5]
        assert [c["id"] for c in second["children"]] == ["w0:2"]
        # The orphan is in neither trace.
        all_children = first["children"] + second["children"]
        assert all(
            c["attrs"]["parent_span"] != 999_999 for c in all_children
        )

    def test_truncated_worker_file_contributes_its_prefix(self, run_dir):
        agg = load_aggregated_run(run_dir)
        self.make_worker_files(run_dir, self.fanout_ids(agg))
        # Kill worker 1 mid-write: torn JSON on the last line.
        with open(run_dir / "events-w1.jsonl", "a",
                  encoding="utf-8") as f:
            f.write('{"type": "span", "name": "worker_ev')
        agg = load_aggregated_run(run_dir)
        assert len(agg.worker_events[1]) == 2  # the complete prefix
        traces = assemble_traces(agg)
        assert len(traces[0]["children"]) == 2

    def test_merged_events_sorted_by_wall_clock(self, run_dir):
        agg = load_aggregated_run(run_dir)
        self.make_worker_files(run_dir, self.fanout_ids(agg))
        agg = load_aggregated_run(run_dir)
        merged = agg.merged_events()
        stamps = [e["ts"] for e in merged]
        assert stamps == sorted(stamps)
        # Worker and parent events share one stream.
        assert {e.get("worker") for e in merged} >= {None, 0, 1}

    def test_lanes_and_pool_summary(self, run_dir):
        agg = load_aggregated_run(run_dir)
        self.make_worker_files(run_dir, self.fanout_ids(agg))
        agg = load_aggregated_run(run_dir)

        lanes = worker_lanes(agg)
        assert lanes[0].evals == 2 and lanes[0].ok == 2
        assert lanes[0].busy_s == pytest.approx(0.7)
        assert lanes[0].sync_s == pytest.approx(0.1)
        assert lanes[1].ok == 1  # the error eval doesn't count as ok
        assert lanes[1].queue_wait_s == pytest.approx(0.05)

        summary = pool_summary(agg)
        assert summary["n_workers"] == 2
        assert summary["fanout_rounds"] == 2
        assert summary["busy_s"] == pytest.approx(0.7 + 0.4)
        assert 0.0 <= summary["utilization"]
        assert 0.0 < summary["queue_wait_share"] < 1.0

    def test_empty_directory_degrades_to_no_workers(self, run_dir):
        agg = load_aggregated_run(run_dir)
        assert agg.n_workers == 0
        assert worker_lanes(agg) == {}
        assert pool_summary(agg)["utilization"] == 0.0
        assert assemble_traces(agg) == [
            {"fanout": s, "children": []}
            for s in agg.run.spans if s["name"] == "probe_fanout"
        ]


class TestFanoutSummary:
    def test_totals_and_last_deadline(self, run_dir):
        agg = load_aggregated_run(run_dir)
        summary = fanout_summary(agg.run)
        assert summary["rounds"] == 2
        assert summary["attempted"] == 8
        assert summary["completed"] == 7
        assert summary["salvaged"] == 1
        assert summary["requeued"] == 1
        assert summary["respawned"] == 1
        assert summary["deadline_s"] == 1.5  # the last round's
        assert summary["ema_batch_s"] == 0.04


class TestMergeWorkerMetrics:
    def test_worker_label_added_and_histograms_exact(self, tmp_path):
        for worker_id, values in ((0, [1.0, 2.0]), (1, [3.0, 4.0])):
            reg = MetricsRegistry()
            reg.counter("worker.evals").inc(len(values))
            for v in values:
                reg.histogram("worker.eval_s").observe(v)
            reg.write_state(tmp_path / f"metrics-w{worker_id}.json")

        merged = merge_worker_metrics(tmp_path)
        series = {
            (name, labels.get("worker")): metric
            for name, kind, labels, metric in merged.series()
        }
        assert series[("worker.evals", "0")].value == 2.0
        assert series[("worker.evals", "1")].value == 2.0
        assert series[("worker.eval_s", "1")].values == [3.0, 4.0]

    def test_corrupt_and_foreign_snapshots_are_skipped(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("worker.evals").inc(1)
        reg.write_state(tmp_path / "metrics-w0.json")
        (tmp_path / "metrics-w1.json").write_text("{ torn")
        (tmp_path / "metrics-w2.json").write_text(
            json.dumps({"format": "something-else", "metrics": []})
        )
        merged = merge_worker_metrics(tmp_path)
        names = {name for name, _, _, _ in merged.series()}
        assert names == {"worker.evals"}
