"""Op profiler: analytic FLOPs models, determinism, hook lifecycle."""

import numpy as np
import pytest

from repro import models
from repro.nn import functional as F
from repro.nn.autograd import active_profiler, no_grad
from repro.nn.tensor import Tensor
from repro.telemetry.profiler import (
    OpProfiler,
    estimate_flops,
    profile_model,
)


class TestFlopsModels:
    def test_conv2d_analytic_count(self):
        # 2 * N * OH * OW * F * C * KH * KW, plus bias adds.
        x = np.zeros((2, 3, 8, 8), dtype=np.float64)
        w = np.zeros((4, 3, 3, 3), dtype=np.float64)
        b = np.zeros(4, dtype=np.float64)
        out = np.zeros((2, 4, 8, 8), dtype=np.float64)
        expected = 2 * 2 * 8 * 8 * 4 * 3 * 3 * 3
        assert estimate_flops("conv2d", (x, w), out) == expected
        assert (
            estimate_flops("conv2d", (x, w, b), out)
            == expected + out.size
        )

    def test_matmul_analytic_count(self):
        a = np.zeros((5, 7), dtype=np.float64)
        b = np.zeros((7, 3), dtype=np.float64)
        out = np.zeros((5, 3), dtype=np.float64)
        assert estimate_flops("matmul", (a, b), out) == 2 * 5 * 3 * 7

    def test_unknown_op_falls_back_to_elementwise(self):
        out = np.zeros((4, 4))
        assert estimate_flops("relu", (out,), out) == out.size

    def test_malformed_shapes_fall_back_instead_of_raising(self):
        out = np.zeros((2, 2))
        assert estimate_flops("conv2d", (), out) == out.size


class TestOpProfiler:
    def test_install_and_nested_restore(self):
        assert active_profiler() is None
        outer, inner = OpProfiler(), OpProfiler()
        with outer:
            assert active_profiler() is outer
            with inner:
                assert active_profiler() is inner
            assert active_profiler() is outer
        assert active_profiler() is None

    def test_records_ops_in_both_grad_modes(self):
        x = Tensor(np.ones((2, 3)), requires_grad=True)
        w = Tensor(np.ones((4, 3)), requires_grad=True)  # (out, in)
        profiler = OpProfiler()
        with profiler:
            F.linear(x, w)  # grad mode: tape + profile
            with no_grad():
                F.linear(x, w)  # fast path: still profiled
        stats = profiler.ops["matmul"]
        assert stats.calls == 2
        assert stats.flops == 2 * (2 * 2 * 4 * 3)
        assert stats.total_s > 0.0
        assert profiler.total_flops >= stats.flops

    def test_counts_are_deterministic_across_runs(self):
        """Calls/FLOPs/bytes are pure functions of model and batch —
        two identical passes must agree exactly (only wall clock may
        differ)."""
        net = models.SmallConvNet(width=4, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(2, 3, 32, 32))

        def run():
            profiler = OpProfiler()
            with profiler:
                with no_grad():
                    net(Tensor(x))
            return {
                name: (s.calls, s.flops, s.bytes)
                for name, s in profiler.ops.items()
            }

        assert run() == run()

    def test_scratch_high_water_mark(self):
        profiler = OpProfiler()
        profiler.note_scratch(100, 100)
        profiler.note_scratch(50, 150)
        profiler.note_scratch(10, 120)
        assert profiler.scratch_allocations == 3
        assert profiler.scratch_high_water_bytes == 150

    def test_summary_and_table_render(self):
        x = Tensor(np.ones((2, 3)))
        w = Tensor(np.ones((4, 3)))
        profiler = OpProfiler()
        with profiler:
            with no_grad():
                F.linear(x, w)
        summary = profiler.summary()
        assert summary["ops"][0]["name"] in ("matmul", "add")
        assert summary["total_flops"] == profiler.total_flops
        table = profiler.format_table()
        assert "matmul" in table and "GFLOP" in table

    def test_uninstalled_profiler_records_nothing(self):
        profiler = OpProfiler()
        with no_grad():
            F.relu(Tensor(np.ones(4)))
        assert profiler.ops == {}


class TestProfileModel:
    def test_inference_profile_covers_conv_hot_path(self):
        net = models.SmallConvNet(width=4, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(2, 3, 32, 32))
        profiler = profile_model(net, x, repeats=2, warmup=1)
        conv_ops = [n for n in profiler.ops if n.startswith("conv2d")]
        assert conv_ops, f"no conv op profiled: {sorted(profiler.ops)}"
        conv = profiler.ops[conv_ops[0]]
        assert conv.calls % 2 == 0  # repeats=2: even call counts
        assert conv.flops > 0 and conv.bytes > 0
        # im2col scratch is armed on the inference path.
        assert active_profiler() is None  # uninstalled afterwards

    def test_train_profile_requires_labels(self):
        net = models.SmallConvNet(width=4, rng=np.random.default_rng(0))
        x = np.zeros((2, 3, 32, 32))
        with pytest.raises(ValueError):
            profile_model(net, x, train=True)

    def test_train_profile_runs_backward(self):
        net = models.SmallConvNet(width=4, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(2, 3, 32, 32))
        y = np.zeros(2, dtype=np.int64)
        profiler = profile_model(net, x, labels=y, train=True,
                                 repeats=1, warmup=0)
        assert "crossentropy" in profiler.ops or profiler.total_s > 0.0
