"""The Telemetry facade: lifecycle, file output, and the disabled path."""

import json

from repro.telemetry import (
    NULL_TELEMETRY,
    MemorySink,
    Telemetry,
    read_events,
)
from repro.telemetry.core import _NULL_METRIC


class TestDisabledPath:
    """Telemetry off must cost (almost) nothing: shared no-op objects,
    no allocation, no files."""

    def test_null_singleton_is_disabled(self):
        assert NULL_TELEMETRY.enabled is False
        assert NULL_TELEMETRY.directory is None

    def test_metrics_are_one_shared_noop(self):
        t = Telemetry.null()
        assert t.counter("a", layer="x") is _NULL_METRIC
        assert t.gauge("b") is _NULL_METRIC
        assert t.histogram("c") is _NULL_METRIC
        assert t.timer("d") is _NULL_METRIC
        # The no-op accepts the full metric API.
        t.counter("a").inc()
        t.gauge("b").set(1.0)
        t.gauge("b").add(1.0)
        t.histogram("c").observe(3.0)
        with t.timer("d"):
            pass
        # Nothing was recorded anywhere.
        assert t.registry.snapshot() == {
            "counters": [], "gauges": [], "histograms": [],
        }

    def test_spans_are_one_shared_noop(self):
        t = Telemetry.null()
        assert t.span("x") is t.span("y", attr=1)
        with t.span("outer"):
            with t.span("inner"):
                assert t.tracer.active_depth == 0

    def test_events_and_lifecycle_are_noops(self, tmp_path):
        t = Telemetry.null()
        t.event("something", value=3)
        t.flush()
        t.close()
        assert list(tmp_path.iterdir()) == []  # nothing written anywhere


class TestLifecycle:
    def test_create_with_directory_writes_all_files(self, tmp_path):
        t = Telemetry.create(directory=tmp_path, log_level="silent")
        assert t.enabled
        with t.span("run"):
            t.counter("ccq.steps").inc()
        t.event("step_complete", step=0)
        t.close()
        events = read_events(t.events_path)
        assert {e["type"] for e in events} == {"span", "event"}
        metrics = json.loads(t.metrics_path.read_text())
        assert metrics["counters"][0]["name"] == "ccq.steps"
        assert (tmp_path / "metrics.csv").exists()

    def test_create_without_directory_writes_no_files(self, tmp_path):
        t = Telemetry.create(log_level="silent")
        with t.span("run"):
            pass
        t.event("x")
        t.flush()
        t.close()
        assert t.events_path is None and t.metrics_path is None

    def test_flush_snapshots_metrics_mid_run(self, tmp_path):
        t = Telemetry.create(directory=tmp_path, log_level="silent")
        t.counter("steps").inc()
        t.flush()
        first = json.loads(t.metrics_path.read_text())
        assert first["counters"][0]["value"] == 1.0
        t.counter("steps").inc()
        t.flush()
        second = json.loads(t.metrics_path.read_text())
        assert second["counters"][0]["value"] == 2.0
        t.close()

    def test_in_memory_collects_events(self):
        t = Telemetry.in_memory()
        with t.span("probe"):
            pass
        t.event("done")
        assert isinstance(t.sink, MemorySink)
        assert [e["type"] for e in t.sink.events] == ["span", "event"]

    def test_logger_mirrors_into_the_run_sink(self, tmp_path):
        import io

        t = Telemetry.create(
            directory=tmp_path, log_level="info", log_stream=io.StringIO()
        )
        t.logger.info("hello", step=1)
        t.close()
        logs = [
            e for e in read_events(t.events_path) if e["type"] == "log"
        ]
        assert logs and logs[0]["msg"] == "hello"

    def test_numpy_values_serialize_in_events(self, tmp_path):
        import numpy as np

        t = Telemetry.create(directory=tmp_path, log_level="silent")
        t.event("step", accuracy=np.float64(0.5), bits=np.array([4, 8]))
        t.close()
        (event,) = read_events(t.events_path)
        assert event["fields"]["accuracy"] == 0.5
        assert event["fields"]["bits"] == [4, 8]
