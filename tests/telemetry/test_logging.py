"""Structured logger + progress line behaviour."""

import io

import pytest

from repro.telemetry import (
    LEVELS,
    MemorySink,
    ProgressLine,
    StructuredLogger,
    format_eta,
)


class TestStructuredLogger:
    def test_level_filtering(self):
        out = io.StringIO()
        log = StructuredLogger(level="warning", stream=out)
        log.debug("nope")
        log.info("nope")
        log.warning("yes")
        log.error("also yes")
        text = out.getvalue()
        assert "nope" not in text
        assert "WARNING" in text and "yes" in text
        assert "ERROR" in text

    def test_fields_render_as_key_value(self):
        out = io.StringIO()
        log = StructuredLogger(level="info", stream=out)
        log.info("step done", layer="conv1", accuracy=0.87654321)
        line = out.getvalue()
        assert "step done" in line
        assert "layer=conv1" in line
        assert "accuracy=0.8765" in line  # floats render compactly

    def test_warnings_go_to_error_stream(self):
        out, err = io.StringIO(), io.StringIO()
        log = StructuredLogger(level="info", stream=out, error_stream=err)
        log.info("stdout line")
        log.warning("stderr line")
        assert "stdout line" in out.getvalue()
        assert "stderr line" not in out.getvalue()
        assert "stderr line" in err.getvalue()

    def test_mirrors_into_sink_as_log_events(self):
        sink = MemorySink()
        log = StructuredLogger(
            level="info", stream=io.StringIO(), sink=sink
        )
        log.info("hello", a=1)
        log.debug("filtered out", b=2)
        (event,) = sink.events
        assert event["type"] == "log"
        assert event["level"] == "info"
        assert event["msg"] == "hello"
        assert event["fields"] == {"a": 1}

    def test_silent_level_suppresses_everything(self):
        out = io.StringIO()
        log = StructuredLogger(level="silent", stream=out)
        log.error("even errors")
        assert out.getvalue() == ""

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError):
            StructuredLogger(level="verbose")

    def test_enabled_for(self):
        log = StructuredLogger(level="info", stream=io.StringIO())
        assert not log.enabled_for("debug")
        assert log.enabled_for("info")
        assert log.enabled_for("error")


def test_levels_are_ordered():
    assert (LEVELS["debug"] < LEVELS["info"] < LEVELS["warning"]
            < LEVELS["error"] < LEVELS["silent"])


def test_format_eta():
    assert format_eta(0) == "00:00"
    assert format_eta(75) == "01:15"
    assert format_eta(3725) == "1:02:05"
    assert format_eta(-5) == "00:00"  # clamped, never negative


class TestProgressLine:
    def test_updates_overwrite_in_place(self):
        out = io.StringIO()
        line = ProgressLine(stream=out, enabled=True)
        line.update(1, total=4, acc=0.5)
        line.update(2, total=4, acc=0.75)
        line.close()
        text = out.getvalue()
        assert text.count("\r") == 2
        assert "step 2/4" in text
        assert "acc 0.75" in text
        assert "eta " in text
        assert text.endswith("\n")

    def test_shorter_line_is_padded_clean(self):
        out = io.StringIO()
        line = ProgressLine(stream=out, enabled=True)
        line.update(1, layer="a_very_long_layer_name")
        line.update(2, layer="x")
        # The second write blank-pads over the longer first line.
        second = out.getvalue().split("\r")[2]
        assert len(second) >= len("step 1 | layer a_very_long_layer_name")

    def test_disabled_line_writes_nothing(self):
        out = io.StringIO()
        line = ProgressLine(stream=out, enabled=False)
        line.update(1, total=10)
        line.close()
        assert out.getvalue() == ""

    def test_close_without_updates_writes_nothing(self):
        out = io.StringIO()
        ProgressLine(stream=out, enabled=True).close()
        assert out.getvalue() == ""
