"""Live monitoring: incremental tail, state folding, HTTP endpoint.

The monitor is exercised exactly the way ``repro watch`` uses it —
against a run directory whose files grow (and tear, and truncate)
under it, replayed here deterministically.
"""

import io
import json
import threading
import urllib.request

import pytest

from repro.telemetry import MetricsRegistry
from repro.telemetry.monitor import (
    MonitorState,
    RunMonitor,
    serve_metrics,
    watch,
)


def event_line(name, ts, **fields):
    return json.dumps({
        "type": "event", "name": name, "ts": ts, "mono": ts,
        "fields": fields,
    }) + "\n"


def span_line(name, ts, duration=0.01, **attrs):
    payload = {
        "type": "span", "name": name, "id": 1, "parent": None,
        "depth": 0, "ts": ts, "mono": ts, "duration_s": duration,
    }
    if attrs:
        payload["attrs"] = attrs
    return json.dumps(payload) + "\n"


class TestMonitorState:
    def test_step_complete_updates_progress(self):
        state = MonitorState()
        state.observe(json.loads(event_line(
            "step_complete", 10.0, step=4, layer="conv1",
            from_bits=8, to_bits=6, recovered_accuracy=0.8,
            compression=3.5,
        )))
        assert state.status == "running"
        assert state.step == 4
        assert state.accuracy == 0.8
        assert state.compression == 3.5
        assert state.bit_map == {"conv1": 6.0}

    def test_terminal_events_set_status(self):
        state = MonitorState()
        state.observe(json.loads(event_line("run_complete", 1.0)))
        assert state.status == "complete"
        state = MonitorState()
        state.observe(json.loads(event_line("interrupted", 1.0)))
        assert state.status == "interrupted"
        state.observe(json.loads(event_line("resumed", 2.0, step=3)))
        assert state.status == "running" and state.step == 3

    def test_stage_tracked_from_spans(self):
        state = MonitorState()
        state.observe(json.loads(span_line("recover", 5.0)))
        assert state.stage == "recover"
        assert state.status == "running"

    def test_metrics_snapshot_fills_gauges_and_counters(self):
        reg = MetricsRegistry()
        reg.gauge("ccq.accuracy").set(0.9)
        reg.gauge("ccq.layer_bits", layer="fc").set(4)
        reg.gauge("hedge.expert_weight", expert="fc").set(0.25)
        reg.counter("ccq.pool_respawns").inc(2)
        state = MonitorState()
        state.update_metrics(reg.snapshot())
        assert state.accuracy == 0.9
        assert state.bit_map == {"fc": 4.0}
        assert state.expert_weights == {"fc": 0.25}
        assert state.counters["ccq.pool_respawns"] == 2.0


class TestRunMonitor:
    def test_incremental_tail_with_torn_line(self, tmp_path):
        events = tmp_path / "events.jsonl"
        monitor = RunMonitor(tmp_path)
        assert monitor.poll() == 0  # no file yet: not an error

        with open(events, "w") as f:
            f.write(event_line("step_complete", 1.0, step=0))
            full = event_line("step_complete", 2.0, step=1)
            f.write(full[: len(full) // 2])  # writer mid-line
        assert monitor.poll() == 1
        assert monitor.state.step == 0

        with open(events, "a") as f:
            f.write(full[len(full) // 2 :])  # the rest arrives
        assert monitor.poll() == 1
        assert monitor.state.step == 1

    def test_truncation_resets_the_monitor(self, tmp_path):
        events = tmp_path / "events.jsonl"
        events.write_text(
            event_line("step_complete", 1.0, step=7)
        )
        monitor = RunMonitor(tmp_path)
        monitor.poll()
        assert monitor.state.step == 7
        # The directory is reused for a fresh run: smaller file.
        events.write_text(event_line("resumed", 2.0, step=1))
        monitor.poll()
        assert monitor.state.step == 1
        assert monitor.state.events_seen == 1

    def test_metrics_json_polled_and_bad_json_keeps_last_good(
        self, tmp_path
    ):
        reg = MetricsRegistry()
        reg.gauge("ccq.accuracy").set(0.5)
        reg.write_json(tmp_path / "metrics.json")
        monitor = RunMonitor(tmp_path)
        monitor.poll()
        assert monitor.state.accuracy == 0.5
        # A torn snapshot must not clobber the last good state.
        (tmp_path / "metrics.json").write_text("{ torn")
        monitor.poll()
        assert monitor.state.accuracy == 0.5
        assert monitor.metrics_snapshot  # previous snapshot retained

    def test_replayed_run_reaches_terminal_state(self, tmp_path):
        """The acceptance check: render live state from a replayed
        events file."""
        with open(tmp_path / "events.jsonl", "w") as f:
            f.write(span_line("initialize", 1.0))
            f.write(event_line(
                "step_complete", 2.0, step=0, layer="conv1",
                from_bits=8, to_bits=4, recovered_accuracy=0.7,
                compression=2.0,
            ))
            f.write(event_line(
                "fanout_report", 2.5, step=0, attempted=4,
                completed=4, salvaged=0, requeued=0, respawned=0,
                quarantined=0, missing=0, degraded=False,
                deadline_s=2.0, ema_batch_s=0.05,
            ))
            f.write(event_line(
                "run_complete", 3.0, steps=1, accuracy=0.7,
                compression=2.0,
            ))
        monitor = RunMonitor(tmp_path)
        monitor.poll()
        panel = monitor.render()
        assert monitor.state.status == "complete"
        assert "conv1=4b" in panel
        assert "status: complete" in panel
        assert "last round 4/4 ok" in panel

    def test_render_never_raises_on_empty_directory(self, tmp_path):
        monitor = RunMonitor(tmp_path)
        monitor.poll()
        assert "status: waiting" in monitor.render()


class TestWatchLoop:
    def test_once_renders_single_snapshot(self, tmp_path):
        (tmp_path / "events.jsonl").write_text(
            event_line("step_complete", 1.0, step=2,
                       recovered_accuracy=0.6, compression=1.5)
        )
        out = io.StringIO()
        state = watch(tmp_path, once=True, stream=out)
        assert state.step == 2
        rendered = out.getvalue()
        assert "step: 2" in rendered
        assert "\x1b[" not in rendered  # non-tty: no escape codes

    def test_until_complete_exits_on_terminal_event(self, tmp_path):
        (tmp_path / "events.jsonl").write_text(
            event_line("run_complete", 1.0)
        )
        out = io.StringIO()
        state = watch(
            tmp_path, interval_s=0.01, follow_until_complete=True,
            stream=out,
        )
        assert state.status == "complete"

    def test_max_seconds_bounds_the_loop(self, tmp_path):
        out = io.StringIO()
        watch(tmp_path, interval_s=0.01, max_seconds=0.05, stream=out)
        assert "status: waiting" in out.getvalue()


class TestServeMetrics:
    @pytest.fixture()
    def run_dir(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("ccq.steps").inc(3)
        reg.gauge("ccq.accuracy").set(0.75)
        reg.write_json(tmp_path / "metrics.json")
        (tmp_path / "events.jsonl").write_text(
            event_line("step_complete", 1.0, step=2,
                       recovered_accuracy=0.75, compression=2.0)
        )
        return tmp_path

    def test_metrics_and_state_endpoints(self, run_dir):
        server = serve_metrics(run_dir, port=0)
        host, port = server.server_address[:2]
        thread = threading.Thread(
            target=server.serve_forever, daemon=True
        )
        thread.start()
        try:
            with urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=5
            ) as resp:
                text = resp.read().decode()
                assert resp.headers["Content-Type"].startswith(
                    "text/plain"
                )
            assert "ccq_steps 3" in text
            assert "ccq_accuracy 0.75" in text

            with urllib.request.urlopen(
                f"http://{host}:{port}/state", timeout=5
            ) as resp:
                state = json.load(resp)
            assert state["step"] == 2
            assert state["accuracy"] == 0.75

            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://{host}:{port}/nope", timeout=5
                )
        finally:
            server.shutdown()
            server.server_close()
