"""Recovery (collaboration) behaviour: manual vs adaptive modes."""

import numpy as np
import pytest

from repro.core.collaboration import RecoveryConfig, recover
from repro.core.training import evaluate, make_sgd
from repro.quantization import quantize_model, set_uniform_bits


class TestRecoveryConfig:
    def test_target_from_slack(self):
        config = RecoveryConfig(slack=0.01)
        assert config.target_accuracy(0.9) == pytest.approx(0.89)

    def test_absolute_threshold_wins(self):
        config = RecoveryConfig(threshold=0.8, slack=0.01)
        assert config.target_accuracy(0.99) == pytest.approx(0.8)


@pytest.fixture()
def damaged_net(pretrained_net, tiny_loaders):
    """A pretrained net freshly quantized to 3 bits (accuracy damaged)."""
    net, baseline = pretrained_net
    quantize_model(net, "pact")
    set_uniform_bits(net, 3, 3)
    return net, baseline


class TestManualMode:
    def test_runs_exactly_configured_epochs(self, damaged_net, tiny_loaders):
        net, baseline = damaged_net
        train, val = tiny_loaders
        opt = make_sgd(net, lr=0.02)
        config = RecoveryConfig(mode="manual", epochs=2, use_hybrid_lr=False)
        report = recover(net, train, val, opt, config,
                         reference_accuracy=baseline)
        assert report.epochs_used == 2
        assert report.target_accuracy is None
        assert report.recovered  # manual mode always reports recovered

    def test_zero_epochs_is_noop(self, damaged_net, tiny_loaders):
        net, baseline = damaged_net
        train, val = tiny_loaders
        opt = make_sgd(net, lr=0.02)
        config = RecoveryConfig(mode="manual", epochs=0, use_hybrid_lr=False)
        report = recover(net, train, val, opt, config,
                         reference_accuracy=baseline)
        assert report.epochs_used == 0
        assert report.start_accuracy == report.end_accuracy


class TestAdaptiveMode:
    def test_stops_early_when_target_met(self, damaged_net, tiny_loaders):
        net, baseline = damaged_net
        train, val = tiny_loaders
        opt = make_sgd(net, lr=0.02)
        # A trivially low target is met immediately -> zero epochs.
        config = RecoveryConfig(mode="adaptive", threshold=0.0, max_epochs=5)
        report = recover(net, train, val, opt, config,
                         reference_accuracy=baseline)
        assert report.epochs_used == 0
        assert report.recovered

    def test_improves_accuracy(self, damaged_net, tiny_loaders):
        net, baseline = damaged_net
        train, val = tiny_loaders
        opt = make_sgd(net, lr=0.02)
        config = RecoveryConfig(mode="adaptive", max_epochs=6, slack=0.02)
        report = recover(net, train, val, opt, config,
                         reference_accuracy=baseline)
        assert report.end_accuracy >= report.start_accuracy - 0.05
        assert report.epochs_used >= 1

    def test_respects_max_epochs(self, damaged_net, tiny_loaders):
        net, baseline = damaged_net
        train, val = tiny_loaders
        opt = make_sgd(net, lr=1e-6)  # too small to ever recover
        config = RecoveryConfig(mode="adaptive", max_epochs=2, threshold=1.1)
        report = recover(net, train, val, opt, config,
                         reference_accuracy=baseline)
        assert report.epochs_used == 2
        assert not report.recovered

    def test_history_lengths_consistent(self, damaged_net, tiny_loaders):
        net, baseline = damaged_net
        train, val = tiny_loaders
        opt = make_sgd(net, lr=0.02)
        config = RecoveryConfig(mode="manual", epochs=3, use_hybrid_lr=True)
        report = recover(net, train, val, opt, config,
                         reference_accuracy=baseline)
        assert len(report.accuracy_history) == report.epochs_used + 1
        assert len(report.train_loss_history) == report.epochs_used
        assert len(report.lr_history) == report.epochs_used

    def test_hybrid_lr_scheduler_engaged(self, damaged_net, tiny_loaders):
        net, baseline = damaged_net
        train, val = tiny_loaders
        opt = make_sgd(net, lr=0.02)
        config = RecoveryConfig(mode="manual", epochs=2, use_hybrid_lr=True)
        report = recover(net, train, val, opt, config,
                         reference_accuracy=baseline)
        assert len(report.lr_history) == 2
