"""Probe-cache determinism: memoization must be invisible to the search.

Acceptance for the probe engine: with the cache on (the default) the
CCQ trajectory — winners, bit configuration, per-step accuracies — is
bit-for-bit identical to a cache-off run, while the number of probe
forward passes drops to at most ``min(U, n_awake)`` per step.  This
must hold even with a *shuffling* validation loader (the pinned probe
subsets decouple probing from the loader's RNG) and across
kill-and-resume.
"""

import numpy as np
import pytest

from repro import models
from repro.core import (
    BitLadder,
    CCQConfig,
    CCQQuantizer,
    RecoveryConfig,
)
from repro.nn.data import DataLoader
from repro.quantization import quantize_model

from .fault_injection import FaultyLoader, SimulatedKill


def make_config(checkpoint_dir=None, **overrides):
    defaults = dict(
        ladder=BitLadder((8, 4, 2)),
        probes_per_step=6,
        probe_batches=1,
        recovery=RecoveryConfig(mode="manual", epochs=1, use_hybrid_lr=False),
        lr=0.02,
        initial_recovery_epochs=1,
        seed=0,
    )
    if checkpoint_dir is not None:
        defaults["checkpoint_dir"] = str(checkpoint_dir)
    defaults.update(overrides)
    return CCQConfig(**defaults)


@pytest.fixture()
def run_factory(pretrained_state, tiny_splits):
    """Builds (model, train, val) triples with identical fresh state.

    The validation loader SHUFFLES — the historical trigger for the
    incomparable-probe-batches bug the pinned subsets fix.
    """
    state, _ = pretrained_state

    def build():
        net = models.SmallConvNet(width=8, rng=np.random.default_rng(0))
        net.load_state_dict(state)
        quantize_model(net, "pact")
        train = DataLoader(tiny_splits.train, batch_size=64, shuffle=True,
                           seed=0)
        val = DataLoader(tiny_splits.val, batch_size=100, shuffle=True,
                         seed=7)
        return net, train, val

    return build


def step_log(result):
    return [
        (r.step, r.layer_name, r.from_bits, r.to_bits) for r in result.records
    ]


def trajectory(result):
    return (
        step_log(result),
        result.bit_config,
        [r.pre_accuracy for r in result.records],
        [r.post_quant_accuracy for r in result.records],
        [r.recovered_accuracy for r in result.records],
        result.final_eval.accuracy,
        result.final_eval.loss,
        result.compression,
    )


class TestCacheTransparency:
    def test_cache_on_off_identical_trajectory(self, run_factory):
        net, train, val = run_factory()
        cached = CCQQuantizer(
            net, train, val, config=make_config(probe_cache=True)
        ).run()

        net, train, val = run_factory()
        uncached = CCQQuantizer(
            net, train, val, config=make_config(probe_cache=False)
        ).run()

        assert trajectory(cached) == trajectory(uncached)

        # Same probe rounds issued; the cache converts repeats into hits.
        assert cached.probe_rounds == uncached.probe_rounds
        assert uncached.probe_cache_hits == 0
        assert uncached.probe_forward_passes == uncached.probe_rounds
        assert (
            cached.probe_forward_passes + cached.probe_cache_hits
            == cached.probe_rounds
        )

    def test_forward_passes_bounded_by_distinct_candidates(
        self, run_factory
    ):
        # 4 experts, U=6 probes/step: at most min(6, n_awake) distinct
        # candidates exist per step, so with the cache the passes are
        # strictly fewer than rounds (6 rounds over <= 4 candidates
        # must repeat by pigeonhole).
        net, train, val = run_factory()
        result = CCQQuantizer(net, train, val, config=make_config()).run()

        n_experts = 4
        per_step_bound = sum(
            min(6, n_experts) for _ in result.records
        )
        assert result.probe_forward_passes <= per_step_bound
        assert result.probe_forward_passes < result.probe_rounds
        assert result.probe_cache_hits > 0


class TestShuffledValLoader:
    def test_probes_unaffected_by_val_shuffle_seed(
        self, pretrained_state, tiny_splits
    ):
        """Pinning makes the val loader's shuffle RNG irrelevant."""
        state, _ = pretrained_state

        def run(val_seed, shuffle):
            net = models.SmallConvNet(width=8, rng=np.random.default_rng(0))
            net.load_state_dict(state)
            quantize_model(net, "pact")
            train = DataLoader(tiny_splits.train, batch_size=64,
                               shuffle=True, seed=0)
            val = DataLoader(tiny_splits.val, batch_size=100,
                             shuffle=shuffle, seed=val_seed)
            return CCQQuantizer(
                net, train, val, config=make_config(max_steps=3)
            ).run()

        a = run(val_seed=7, shuffle=True)
        b = run(val_seed=1234, shuffle=True)
        c = run(val_seed=0, shuffle=False)
        assert step_log(a) == step_log(b) == step_log(c)
        assert a.bit_config == b.bit_config == c.bit_config


class TestKillAndResumeWithCache:
    def test_resumed_cached_run_matches_reference(self, run_factory,
                                                  tmp_path):
        ckpt = tmp_path / "ckpt"

        net, train, val = run_factory()
        reference = CCQQuantizer(net, train, val, config=make_config()).run()
        assert len(reference.records) == 8

        net, train, val = run_factory()
        killed_train = FaultyLoader(train, fail_at_batch=25, mode="kill")
        interrupted = CCQQuantizer(
            net, killed_train, val, config=make_config(ckpt)
        )
        with pytest.raises(SimulatedKill):
            interrupted.run()
        assert interrupted.store.journal.events("step_complete")

        net, train, val = run_factory()
        resumed = CCQQuantizer(net, train, val, config=make_config(ckpt))
        result = resumed.run(resume=True)

        assert trajectory(result) == trajectory(reference)
        # Cache counters resume from the checkpoint instead of resetting.
        completed_before = len(
            interrupted.store.journal.events("step_complete")
        )
        assert completed_before > 0
        assert result.probe_rounds == reference.probe_rounds

    def test_cache_flag_absent_from_fingerprint(self, run_factory,
                                                tmp_path):
        """probe_cache is trajectory-invariant, so flipping it must not
        invalidate a checkpoint."""
        ckpt = tmp_path / "ckpt"
        net, train, val = run_factory()
        CCQQuantizer(
            net, train, val,
            config=make_config(ckpt, max_steps=2, probe_cache=True),
        ).run()

        net, train, val = run_factory()
        flipped = CCQQuantizer(
            net, train, val, config=make_config(ckpt, probe_cache=False)
        )
        result = flipped.run(resume=True)
        assert [r.step for r in result.records] == list(range(8))
