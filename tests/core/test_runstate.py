"""Journal format, atomic checkpoint store, and the state codecs."""

import json
import os

import numpy as np
import pytest

from repro import models
from repro.core.collaboration import RecoveryReport
from repro.core.competition import CompetitionResult
from repro.core.runstate import (
    RunJournal,
    RunStateStore,
    eval_from_json,
    eval_to_json,
    get_rng_state,
    record_from_json,
    record_to_json,
    set_rng_state,
)
from repro.core.training import EvalResult
from repro.nn.optim import SGD, Adam
from repro.nn.tensor import Tensor
from repro.quantization import get_bit_config, quantize_model, set_uniform_bits


class TestRunJournal:
    def test_append_and_read_roundtrip(self, tmp_path):
        journal = RunJournal(tmp_path / "journal.jsonl")
        journal.append("run_start", seed=0)
        journal.append("step_complete", step=0, layer="conv1")
        events = journal.events()
        assert [e["event"] for e in events] == ["run_start", "step_complete"]
        assert [e["seq"] for e in events] == [0, 1]
        assert events[1]["layer"] == "conv1"

    def test_filter_by_event(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        journal.append("a")
        journal.append("b")
        journal.append("a")
        assert len(journal.events("a")) == 2
        assert journal.events("missing") == []

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = RunJournal(path)
        journal.append("a", n=1)
        journal.append("b", n=2)
        with open(path, "a") as f:
            f.write('{"seq": 2, "event": "c", "n":')  # crash mid-write
        reopened = RunJournal(path)
        events = reopened.events()
        assert [e["event"] for e in events] == ["a", "b"]
        # Appends continue after the torn line with the right sequence.
        reopened.append("d")
        assert reopened.events()[-1]["seq"] == 2

    def test_lines_are_valid_jsonl(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = RunJournal(path)
        journal.append("x", value=1.5)
        for line in path.read_text().splitlines():
            json.loads(line)


class TestRngCodec:
    def test_state_roundtrips_through_json(self):
        rng = np.random.default_rng(42)
        rng.random(17)  # advance
        state = json.loads(json.dumps(get_rng_state(rng)))
        clone = np.random.default_rng(0)
        set_rng_state(clone, state)
        np.testing.assert_array_equal(rng.random(50), clone.random(50))


class TestRecordCodec:
    def _record(self):
        from repro.core.ccq import StepRecord

        return StepRecord(
            step=3, layer_index=1, layer_name="conv2",
            from_bits=8, to_bits=4, lambda_used=0.55,
            pre_accuracy=0.81, post_quant_accuracy=0.62,
            recovered_accuracy=0.80,
            recovery=RecoveryReport(
                epochs_used=2, start_accuracy=0.62, end_accuracy=0.80,
                target_accuracy=0.805, recovered=False,
                accuracy_history=[0.62, 0.7, 0.8],
                train_loss_history=[1.2, 0.9],
                lr_history=[0.02, 0.01],
            ),
            competition=CompetitionResult(
                winner=1,
                probabilities=np.array([0.25, 0.5, 0.25]),
                learned_probabilities=np.array([0.3, 0.4, 0.3]),
                probe_losses={0: 1.5, 2: 2.5},
                probes=[0, 2, 0],
                lambda_used=0.55,
            ),
            compression=3.7,
        )

    def test_roundtrip_through_json_text(self):
        original = self._record()
        data = json.loads(json.dumps(record_to_json(original)))
        restored = record_from_json(data)
        assert restored.step == original.step
        assert restored.layer_name == original.layer_name
        assert restored.from_bits == original.from_bits
        assert restored.to_bits == original.to_bits
        assert restored.recovery == original.recovery
        assert restored.competition.winner == original.competition.winner
        # Integer keys survive the JSON string-key round trip.
        assert restored.competition.probe_losses == {0: 1.5, 2: 2.5}
        np.testing.assert_array_equal(
            restored.competition.probabilities,
            original.competition.probabilities,
        )
        assert restored.compression == original.compression

    def test_eval_codec(self):
        original = EvalResult(loss=1.25, accuracy=0.5, n_samples=200)
        assert eval_from_json(
            json.loads(json.dumps(eval_to_json(original)))
        ) == original


def _trained_pair(width=4, steps=3):
    """A quantized model + SGD that has real momentum state."""
    rng = np.random.default_rng(0)
    net = models.SmallConvNet(width=width, rng=np.random.default_rng(0))
    quantize_model(net, "pact")
    set_uniform_bits(net, 4, 4)
    optimizer = SGD(list(net.parameters()), lr=0.05, momentum=0.9)
    for _ in range(steps):
        x = Tensor(rng.normal(size=(4, 3, 12, 12)))
        loss = net(x).sum()
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    return net, optimizer


class TestOptimizerState:
    def test_sgd_roundtrip_produces_identical_updates(self):
        net, optimizer = _trained_pair()
        state = optimizer.state_dict()

        other = models.SmallConvNet(width=4, rng=np.random.default_rng(5))
        quantize_model(other, "pact")
        set_uniform_bits(other, 4, 4)
        other.load_state_dict(net.state_dict())
        restored = SGD(list(other.parameters()), lr=0.01, momentum=0.9)
        restored.load_state_dict(state)
        assert restored.lr == optimizer.lr

        rng = np.random.default_rng(7)
        x = Tensor(rng.normal(size=(4, 3, 12, 12)))
        for opt, model in ((optimizer, net), (restored, other)):
            opt.zero_grad()
            model(Tensor(x.data.copy())).sum().backward()
            opt.step()
        for a, b in zip(net.parameters(), other.parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_adam_state_roundtrip(self):
        net, _ = _trained_pair(steps=0)
        params = list(net.parameters())
        adam = Adam(params, lr=1e-3)
        rng = np.random.default_rng(3)
        for _ in range(2):
            adam.zero_grad()
            net(Tensor(rng.normal(size=(2, 3, 12, 12)))).sum().backward()
            adam.step()
        state = adam.state_dict()
        clone = Adam(params, lr=5e-4)
        clone.load_state_dict(state)
        assert clone._t == adam._t
        for key in adam._m:
            np.testing.assert_array_equal(clone._m[key], adam._m[key])

    def test_rejects_out_of_range_parameter_index(self):
        net, optimizer = _trained_pair()
        state = optimizer.state_dict()
        state["velocity"]["999"] = np.zeros(3)
        with pytest.raises(KeyError):
            optimizer.load_state_dict(state)


class TestRunStateStore:
    def test_save_load_roundtrip(self, tmp_path):
        net, optimizer = _trained_pair()
        store = RunStateStore(tmp_path / "run")
        state = {"step": 5, "best_accuracy": 0.9, "custom": [1, 2, 3]}
        store.save(net, optimizer, state, seq=1)
        assert store.has_checkpoint()

        other = models.SmallConvNet(width=4, rng=np.random.default_rng(9))
        quantize_model(other, "pact")
        set_uniform_bits(other, 8, 8)
        restored_opt = SGD(list(other.parameters()), lr=0.5, momentum=0.9)
        loaded = RunStateStore(tmp_path / "run").load(other, restored_opt)
        assert loaded["step"] == 5
        assert loaded["custom"] == [1, 2, 3]
        assert get_bit_config(other) == get_bit_config(net)
        for (k1, v1), (k2, v2) in zip(
            sorted(net.state_dict().items()),
            sorted(other.state_dict().items()),
        ):
            assert k1 == k2
            np.testing.assert_array_equal(v1, v2)
        assert restored_opt.lr == optimizer.lr

    def test_superseded_archives_are_pruned(self, tmp_path):
        # Two generations are retained (current + rollback target);
        # anything older is pruned together with its digest sidecar.
        net, optimizer = _trained_pair()
        store = RunStateStore(tmp_path / "run")
        store.save(net, optimizer, {"step": 1}, seq=1)
        store.save(net, optimizer, {"step": 2}, seq=2)
        store.save(net, optimizer, {"step": 3}, seq=3)
        names = sorted(os.listdir(tmp_path / "run"))
        assert "model-000003.npz" in names
        assert "model-000002.npz" in names  # state.prev.json's archives
        assert "state.prev.json" in names
        assert "model-000001.npz" not in names
        assert "model-000001.npz.sha256" not in names
        assert "optim-000001.npz" not in names

    def test_no_temp_files_left_behind(self, tmp_path):
        net, optimizer = _trained_pair()
        store = RunStateStore(tmp_path / "run")
        store.save(net, optimizer, {"step": 1}, seq=1)
        leftovers = [n for n in os.listdir(tmp_path / "run")
                     if n.endswith(".tmp")]
        assert leftovers == []

    def test_missing_checkpoint_is_a_clear_error(self, tmp_path):
        from repro.nn.serialization import CheckpointError

        net, optimizer = _trained_pair()
        store = RunStateStore(tmp_path / "empty")
        with pytest.raises(CheckpointError, match="no checkpoint"):
            store.load(net, optimizer)


def _fresh_pair():
    """A load target with different weights/bits than the saved pair."""
    net = models.SmallConvNet(width=4, rng=np.random.default_rng(11))
    quantize_model(net, "pact")
    set_uniform_bits(net, 8, 8)
    return net, SGD(list(net.parameters()), lr=0.5, momentum=0.9)


def _flip_one_byte(path, offset=100):
    data = bytearray(path.read_bytes())
    data[offset] ^= 0xFF
    path.write_bytes(bytes(data))


class TestCheckpointIntegrity:
    """Digest sidecars, self-digests, and rollback to the predecessor."""

    def _two_generation_store(self, tmp_path):
        net, optimizer = _trained_pair()
        store = RunStateStore(tmp_path / "run")
        store.save(net, optimizer, {"step": 1}, seq=1)
        store.save(net, optimizer, {"step": 2}, seq=2)
        return net, optimizer, store

    def test_archives_get_matching_sha256_sidecars(self, tmp_path):
        from repro.nn.serialization import digest_path, file_sha256

        _, _, store = self._two_generation_store(tmp_path)
        archives = sorted(store.directory.glob("*.npz"))
        assert archives
        for archive in archives:
            sidecar = digest_path(archive)
            assert sidecar.exists()
            recorded = sidecar.read_text().split()[0]
            assert recorded == file_sha256(archive)

    def test_flipped_archive_byte_rolls_back_to_predecessor(
        self, tmp_path
    ):
        self._two_generation_store(tmp_path)
        _flip_one_byte(tmp_path / "run" / "model-000002.npz")

        store = RunStateStore(tmp_path / "run")
        net, optimizer = _fresh_pair()
        loaded = store.load(net, optimizer)
        assert loaded["step"] == 1  # the predecessor generation
        assert store.load_warnings
        assert "sha256" in store.load_warnings[0]
        rollbacks = store.journal.events("checkpoint_rollback")
        assert rollbacks and rollbacks[-1]["state_file"] == "state.json"

    def test_corrupted_state_json_rolls_back(self, tmp_path):
        self._two_generation_store(tmp_path)
        (tmp_path / "run" / "state.json").write_text("{torn garbage")

        store = RunStateStore(tmp_path / "run")
        net, optimizer = _fresh_pair()
        assert store.load(net, optimizer)["step"] == 1
        assert store.load_warnings

    def test_tampered_state_field_fails_self_digest(self, tmp_path):
        self._two_generation_store(tmp_path)
        state_path = tmp_path / "run" / "state.json"
        payload = json.loads(state_path.read_text())
        payload["step"] = 999  # digest no longer matches
        state_path.write_text(json.dumps(payload))

        store = RunStateStore(tmp_path / "run")
        net, optimizer = _fresh_pair()
        assert store.load(net, optimizer)["step"] == 1
        assert any("self-digest" in w for w in store.load_warnings)

    def test_legacy_checkpoint_without_digests_still_loads(
        self, tmp_path
    ):
        # Pre-integrity checkpoints have no sidecars and no state
        # self-digest; they must stay loadable (verification is only
        # enforced where a digest exists to verify against).
        self._two_generation_store(tmp_path)
        run_dir = tmp_path / "run"
        for sidecar in run_dir.glob("*.sha256"):
            sidecar.unlink()
        state_path = run_dir / "state.json"
        payload = json.loads(state_path.read_text())
        del payload[RunStateStore.STATE_DIGEST_KEY]
        state_path.write_text(json.dumps(payload))

        store = RunStateStore(run_dir)
        net, optimizer = _fresh_pair()
        assert store.load(net, optimizer)["step"] == 2
        assert store.load_warnings == []

    def test_both_generations_corrupt_is_a_clear_error(self, tmp_path):
        from repro.nn.serialization import CheckpointError

        self._two_generation_store(tmp_path)
        _flip_one_byte(tmp_path / "run" / "model-000002.npz")
        _flip_one_byte(tmp_path / "run" / "model-000001.npz")

        store = RunStateStore(tmp_path / "run")
        net, optimizer = _fresh_pair()
        with pytest.raises(CheckpointError, match="no loadable"):
            store.load(net, optimizer)
        assert len(store.load_warnings) == 2
