"""Bit-ladder invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schedule import DEFAULT_LADDER, BitLadder


class TestConstruction:
    def test_default_ladder(self):
        assert DEFAULT_LADDER.levels == (8, 6, 4, 3, 2)
        assert DEFAULT_LADDER.start == 8
        assert DEFAULT_LADDER.floor == 2

    def test_rejects_increasing(self):
        with pytest.raises(ValueError):
            BitLadder((2, 4, 8))

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            BitLadder((8, 4, 4, 2))

    def test_rejects_single_level(self):
        with pytest.raises(ValueError):
            BitLadder((8,))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            BitLadder((4, 0))

    def test_from_range(self):
        assert BitLadder.from_range(8, 2).levels == (8, 7, 6, 5, 4, 3, 2)

    def test_from_range_invalid(self):
        with pytest.raises(ValueError):
            BitLadder.from_range(4, 4)


class TestNavigation:
    def test_next_level(self):
        ladder = BitLadder((8, 4, 2))
        assert ladder.next_level(8) == 4
        assert ladder.next_level(4) == 2
        assert ladder.next_level(2) is None

    def test_next_level_unknown_bits(self):
        with pytest.raises(ValueError):
            BitLadder((8, 4, 2)).next_level(5)

    def test_is_floor(self):
        ladder = BitLadder((8, 4, 2))
        assert ladder.is_floor(2)
        assert not ladder.is_floor(8)

    def test_levels_between(self):
        assert DEFAULT_LADDER.levels_between(6, 3) == (6, 4, 3)

    def test_levels_between_reversed_raises(self):
        with pytest.raises(ValueError):
            DEFAULT_LADDER.levels_between(3, 6)

    def test_iteration_and_len(self):
        ladder = BitLadder((8, 4, 2))
        assert list(ladder) == [8, 4, 2]
        assert len(ladder) == 3

    @given(st.lists(st.integers(1, 32), min_size=2, max_size=8, unique=True))
    @settings(max_examples=50, deadline=None)
    def test_walking_next_level_reaches_floor(self, levels):
        levels = tuple(sorted(levels, reverse=True))
        ladder = BitLadder(levels)
        bits = ladder.start
        seen = [bits]
        while not ladder.is_floor(bits):
            bits = ladder.next_level(bits)
            seen.append(bits)
        assert tuple(seen) == levels
