"""Automatic expert-grouping helpers."""

import numpy as np
import pytest

from repro import models
from repro.core import group_by_prefix, residual_block_groups
from repro.quantization import quantize_model, quantized_layers


@pytest.fixture()
def resnet():
    net = models.resnet20(width_mult=0.25, rng=np.random.default_rng(0))
    return quantize_model(net, "pact")


class TestGroupByPrefix:
    def test_depth_one_groups_stages(self, resnet):
        groups = group_by_prefix(resnet, 1)
        assert set(groups) == {"conv1", "layer1", "layer2", "layer3", "fc"}

    def test_depth_two_groups_blocks(self, resnet):
        groups = residual_block_groups(resnet)
        # 9 residual blocks + stem + fc
        assert len(groups) == 11
        assert "layer2.0" in groups
        # each block has 2 convs (+ shortcut at stage transitions)
        assert len(groups["layer1.0"]) == 2
        assert len(groups["layer2.0"]) == 3  # conv1, conv2, shortcut

    def test_partition_is_complete_and_disjoint(self, resnet):
        groups = residual_block_groups(resnet)
        members = [m for ms in groups.values() for m in ms]
        all_layers = [n for n, _ in quantized_layers(resnet)]
        assert sorted(members) == sorted(all_layers)
        assert len(members) == len(set(members))

    def test_shallow_names_are_singletons(self, resnet):
        groups = group_by_prefix(resnet, 3)
        assert groups["conv1"] == ["conv1"]
        assert groups["fc"] == ["fc"]

    def test_invalid_depth(self, resnet):
        with pytest.raises(ValueError):
            group_by_prefix(resnet, 0)

    def test_groups_feed_ccq(self, resnet, tiny_loaders):
        from repro.core import BitLadder, CCQConfig, CCQQuantizer, RecoveryConfig

        train, val = tiny_loaders
        groups = group_by_prefix(resnet, 1)
        ccq = CCQQuantizer(
            resnet, train, val,
            config=CCQConfig(
                ladder=BitLadder((8, 4)),
                probes_per_step=1, probe_batches=1,
                recovery=RecoveryConfig(mode="manual", epochs=0,
                                        use_hybrid_lr=False),
                initial_recovery_epochs=0, max_steps=2,
            ),
            groups=groups,
        )
        result = ccq.run()
        assert len(ccq.experts) == 5
        assert len(result.records) == 2
