"""Model-size accounting."""

import numpy as np
import pytest

from repro import models
from repro.core.compression import compression_ratio, model_size_report
from repro.quantization import quantize_model, quantized_layers, set_uniform_bits


def quantized_net():
    net = models.SmallConvNet(width=4, rng=np.random.default_rng(0))
    return quantize_model(net, "dorefa")


class TestReport:
    def test_fp_model_has_ratio_one(self):
        net = quantized_net()
        assert compression_ratio(net) == pytest.approx(1.0)

    def test_uniform_bits_ratio(self):
        net = quantized_net()
        set_uniform_bits(net, 4, 4)
        assert compression_ratio(net) == pytest.approx(8.0)

    def test_mixed_precision_ratio(self):
        net = quantized_net()
        layers = quantized_layers(net)
        for _, layer in layers:
            layer.w_bits = 8
        layers[0][1].w_bits = 2
        report = model_size_report(net)
        params = {l.name: l.n_params for l in report.layers}
        total = sum(params.values())
        first = report.layers[0].name
        expected_bits = params[first] * 2 + (total - params[first]) * 8
        assert report.compression == pytest.approx(32 * total / expected_bits)

    def test_include_other_lowers_ratio(self):
        net = quantized_net()
        set_uniform_bits(net, 2, 2)
        with_bn = compression_ratio(net, include_other=True)
        without = compression_ratio(net)
        assert with_bn < without

    def test_layer_rows_complete(self):
        net = quantized_net()
        set_uniform_bits(net, 4, 4)
        report = model_size_report(net)
        assert len(report.layers) == 4
        assert set(report.by_layer()) == {n for n, _ in quantized_layers(net)}

    def test_size_bytes(self):
        net = quantized_net()
        set_uniform_bits(net, 8, 8)
        layer = model_size_report(net).layers[0]
        assert layer.size_bytes == layer.size_bits / 8

    def test_other_params_counts_bn_and_bias(self):
        net = quantized_net()
        report = model_size_report(net)
        # SmallConvNet: 3 BN layers (2 params each of width) + fc bias.
        expected = sum(
            p.size for name, p in net.named_parameters()
            if "bn" in name or name.endswith("bias")
        )
        assert report.other_params == expected
