"""Divergence guards, retry policy, and the CCQ rollback/skip paths."""

import numpy as np
import pytest

from repro.core import (
    BitLadder,
    CCQConfig,
    CCQQuantizer,
    DivergenceError,
    RecoveryConfig,
    RetryPolicy,
)
from repro.core.training import evaluate, make_sgd, train_epoch
from repro.nn.data import DataLoader
from repro.quantization import get_bit_config, quantize_model

from .fault_injection import FaultyLoader, FaultyModule, InjectedFault


def fresh_loaders(tiny_splits, seed=0):
    """Per-test loaders so faults never perturb the shared fixtures."""
    train = DataLoader(tiny_splits.train, batch_size=64, shuffle=True,
                       seed=seed)
    val = DataLoader(tiny_splits.val, batch_size=100)
    return train, val


def fast_config(tmp_path=None, **overrides):
    defaults = dict(
        ladder=BitLadder((8, 4, 2)),
        probes_per_step=3,
        probe_batches=1,
        recovery=RecoveryConfig(mode="manual", epochs=1, use_hybrid_lr=False),
        lr=0.02,
        initial_recovery_epochs=1,
        seed=0,
    )
    if tmp_path is not None:
        defaults["checkpoint_dir"] = str(tmp_path / "ckpt")
    defaults.update(overrides)
    return CCQConfig(**defaults)


class TestDivergenceGuards:
    def test_evaluate_raises_on_nan_loss(self, pretrained_net, tiny_splits):
        net, _ = pretrained_net
        _, val = fresh_loaders(tiny_splits)
        poisoned = FaultyLoader(val, fail_at_batch=0, mode="nan")
        with pytest.raises(DivergenceError) as excinfo:
            evaluate(net, poisoned)
        assert excinfo.value.stage == "evaluate"
        assert excinfo.value.batch_index == 0

    def test_evaluate_opt_out_preserves_silent_nan(
        self, pretrained_net, tiny_splits
    ):
        net, _ = pretrained_net
        _, val = fresh_loaders(tiny_splits)
        poisoned = FaultyLoader(val, fail_at_batch=0, mode="nan", once=False)
        result = evaluate(net, poisoned, check_divergence=False)
        assert np.isnan(result.loss)

    def test_train_epoch_raises_before_applying_poisoned_update(
        self, pretrained_net, tiny_splits
    ):
        net, _ = pretrained_net
        train, _ = fresh_loaders(tiny_splits)
        optimizer = make_sgd(net, lr=0.05, momentum=0.9)
        # Learnable parameters must be untouched by the poisoned batch.
        # (BatchNorm running stats mutate during forward, before a loss
        # exists; CCQ's snapshot rollback is what restores those.)
        before = [p.data.copy() for p in net.parameters()]
        poisoned = FaultyLoader(train, fail_at_batch=0, mode="nan")
        with pytest.raises(DivergenceError) as excinfo:
            train_epoch(net, poisoned, optimizer)
        assert excinfo.value.stage == "train"
        for param, value in zip(net.parameters(), before):
            np.testing.assert_array_equal(param.data, value)

    def test_train_epoch_guards_mid_epoch_divergence(
        self, pretrained_net, tiny_splits
    ):
        net, _ = pretrained_net
        train, _ = fresh_loaders(tiny_splits)
        optimizer = make_sgd(net, lr=0.05)
        poisoned = FaultyLoader(train, fail_at_batch=3, mode="nan")
        with pytest.raises(DivergenceError) as excinfo:
            train_epoch(net, poisoned, optimizer)
        assert excinfo.value.batch_index == 3

    def test_faulty_module_nan_output_is_caught(
        self, pretrained_net, tiny_splits
    ):
        net, _ = pretrained_net
        _, val = fresh_loaders(tiny_splits)
        wrapped = FaultyModule(net, fail_at_call=0, mode="nan")
        with pytest.raises(DivergenceError):
            evaluate(wrapped, val)

    def test_injected_raise_passes_through(self, pretrained_net, tiny_splits):
        net, _ = pretrained_net
        _, val = fresh_loaders(tiny_splits)
        broken = FaultyLoader(val, fail_at_batch=0, mode="raise")
        with pytest.raises(InjectedFault):
            evaluate(net, broken)

    def test_stall_mode_delays_but_continues(
        self, pretrained_net, tiny_splits
    ):
        net, _ = pretrained_net
        _, val = fresh_loaders(tiny_splits)
        slow = FaultyLoader(val, fail_at_batch=0, mode="stall",
                            stall_seconds=0.01)
        result = evaluate(net, slow)
        assert np.isfinite(result.loss)
        assert slow.faults_fired == 1


class TestRetryPolicy:
    def test_lr_backoff_sequence(self):
        policy = RetryPolicy(max_retries=3, lr_decay=0.5)
        lrs = [policy.lr_for(a, 0.1) for a in policy.attempts()]
        assert lrs == pytest.approx([0.1, 0.05, 0.025, 0.0125])
        assert policy.max_attempts == 4

    def test_zero_retries_means_single_attempt(self):
        policy = RetryPolicy(max_retries=0)
        assert list(policy.attempts()) == [0]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(lr_decay=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(lr_decay=1.5)


class TestCCQRollback:
    def test_transient_nan_recovers_via_retry(
        self, pretrained_net, tiny_splits, tmp_path
    ):
        """Acceptance: a NaN forced during one recovery stage completes
        the run via rollback+retry, and the journal records it."""
        net, _ = pretrained_net
        quantize_model(net, "pact")
        train, val = fresh_loaders(tiny_splits)
        # Batch 12 lands inside step 0's recovery epoch (initialize
        # consumes batches 0-9); once=True makes the retry clean.
        faulty_train = FaultyLoader(train, fail_at_batch=12, mode="nan")
        ccq = CCQQuantizer(net, faulty_train, val,
                           config=fast_config(tmp_path))
        result = ccq.run()
        assert faulty_train.faults_fired == 1
        # Run completed all the way to the ladder floor.
        assert len(result.records) == 8
        for name, (w_bits, _) in result.bit_config.items():
            assert w_bits == 2, name
        retries = ccq.store.journal.events("recovery_retry")
        assert len(retries) == 1
        assert retries[0]["step"] == 0
        assert retries[0]["stage"] == "train"
        # The retry decayed the LR for the second attempt.
        assert retries[0]["lr"] == pytest.approx(0.02 * 0.5)

    def test_persistent_nan_degrades_to_journaled_skips(
        self, pretrained_net, tiny_splits, tmp_path
    ):
        """When every retry fails the step is skipped: the bit drop is
        reverted, the expert sleeps, and the search ends gracefully."""
        net, _ = pretrained_net
        quantize_model(net, "pact")
        train, val = fresh_loaders(tiny_splits)
        # Fault on every training batch after initialize: all recovery
        # stages diverge, all retries fail.
        faulty_train = FaultyLoader(train, fail_at_batch=10, mode="nan",
                                    once=False)
        ccq = CCQQuantizer(net, faulty_train, val,
                           config=fast_config(tmp_path, max_retries=1))
        result = ccq.run()  # must not raise
        assert result.records == []
        # Every expert was retired after its retries were exhausted.
        skips = ccq.store.journal.events("expert_skipped")
        assert len(skips) == 4
        assert all(s["attempts"] == 2 for s in skips)
        # The winners' bit drops were all reverted to the start level.
        for name, (w_bits, _) in get_bit_config(net).items():
            assert w_bits == 8, name

    def test_fatal_divergence_is_journaled_and_raised(
        self, pretrained_net, tiny_splits, tmp_path
    ):
        """A standing model that is already NaN cannot be rolled back;
        the driver journals the post-mortem and surfaces a typed error."""
        net, _ = pretrained_net
        quantize_model(net, "pact")
        train, val = fresh_loaders(tiny_splits)
        ccq = CCQQuantizer(net, train, val, config=fast_config(tmp_path))
        ccq.initialize()
        for p in net.parameters():
            p.data[...] = np.nan
        with pytest.raises(DivergenceError):
            ccq._execute_step(0)
        assert ccq.store.journal.events("fatal_divergence")

    def test_diverged_probe_returns_penalty(
        self, pretrained_net, tiny_splits, tmp_path, monkeypatch
    ):
        from repro.core.ccq import PROBE_DIVERGENCE_PENALTY

        net, _ = pretrained_net
        quantize_model(net, "pact")
        train, val = fresh_loaders(tiny_splits)
        ccq = CCQQuantizer(net, train, val, config=fast_config(tmp_path))
        monkeypatch.setattr(
            ccq, "_probe_loss",
            lambda index: (_ for _ in ()).throw(
                DivergenceError("boom", stage="evaluate")
            ),
        )
        loss = ccq._guarded_probe(0)
        assert loss == PROBE_DIVERGENCE_PENALTY
        assert ccq.store.journal.events("probe_divergence")
