"""Unit tests for the probe-evaluation engine."""

import numpy as np
import pytest

from repro.core.probe import PinnedProbeSet, ProbeEngine, pin_probe_batches
from repro.datasets.synthetic import SyntheticImageConfig, _make_splits
from repro.nn.data import DataLoader


@pytest.fixture(scope="module")
def val_dataset():
    config = SyntheticImageConfig(
        n_classes=4, image_size=8, channels=3, seed=3
    )
    return _make_splits(
        config, n_train=16, n_val=40, n_test=8, augment=False
    ).val


class TestPinnedProbeSet:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            PinnedProbeSet([])

    def test_iteration_and_counts(self, val_dataset):
        pinned = pin_probe_batches(
            DataLoader(val_dataset, batch_size=16), max_batches=2
        )
        assert len(pinned) == 2
        assert pinned.n_samples == 32
        for images, labels in pinned:
            assert images.shape == (16, 3, 8, 8)
            assert labels.dtype == np.int64

    def test_last_partial_batch(self, val_dataset):
        # 40 samples at batch 16 -> 16 + 16 + 8.
        pinned = pin_probe_batches(DataLoader(val_dataset, batch_size=16))
        assert [len(lbl) for _, lbl in pinned.batches] == [16, 16, 8]
        assert pinned.n_samples == len(val_dataset)


class TestPinning:
    def test_dataset_order_matches_unshuffled_loader(self, val_dataset):
        loader = DataLoader(val_dataset, batch_size=16)
        pinned = pin_probe_batches(loader, max_batches=2)
        direct = list(loader)[:2]
        for (pi, pl), (di, dl) in zip(pinned, direct):
            np.testing.assert_array_equal(pi, di)
            np.testing.assert_array_equal(pl, dl)

    def test_pinning_never_consumes_loader_rng(self, val_dataset):
        loader = DataLoader(val_dataset, batch_size=16, shuffle=True, seed=9)
        state_before = loader._rng.bit_generator.state
        pin_probe_batches(loader, max_batches=2)
        assert loader._rng.bit_generator.state == state_before
        # ... so a later iteration of the loader is unaffected.
        reference = DataLoader(val_dataset, batch_size=16, shuffle=True,
                               seed=9)
        for (li, _), (ri, _) in zip(loader, reference):
            np.testing.assert_array_equal(li, ri)

    def test_pinned_batches_ignore_loader_shuffle(self, val_dataset):
        shuffled = DataLoader(val_dataset, batch_size=16, shuffle=True,
                              seed=9)
        plain = DataLoader(val_dataset, batch_size=16)
        a = pin_probe_batches(shuffled, max_batches=1)
        b = pin_probe_batches(plain, max_batches=1)
        np.testing.assert_array_equal(a.batches[0][0], b.batches[0][0])

    def test_duck_typed_loader_fallback(self, val_dataset):
        batches = list(DataLoader(val_dataset, batch_size=16))

        class MinimalLoader:
            def __iter__(self):
                return iter(batches)

        pinned = pin_probe_batches(MinimalLoader(), max_batches=2)
        assert len(pinned) == 2
        np.testing.assert_array_equal(pinned.batches[0][0], batches[0][0])


class TestProbeEngine:
    def _engine(self, val_dataset, **kwargs):
        loader = DataLoader(val_dataset, batch_size=16)
        return ProbeEngine(loader, probe_batches=1, **kwargs)

    def test_memoizes_within_step(self, val_dataset):
        engine = self._engine(val_dataset)
        calls = []

        def run_eval(pinned):
            calls.append(pinned.n_samples)
            return 0.5

        engine.begin_step(0)
        assert engine.evaluate(("a", 4), run_eval) == 0.5
        assert engine.evaluate(("a", 4), run_eval) == 0.5
        assert calls == [16]
        assert engine.stats() == {
            "cache_hits": 1, "cache_misses": 1, "rounds": 2,
        }

    def test_distinct_keys_each_evaluate(self, val_dataset):
        engine = self._engine(val_dataset)
        engine.begin_step(0)
        engine.evaluate(("a", 4), lambda p: 0.1)
        engine.evaluate(("b", 4), lambda p: 0.2)
        engine.evaluate(("a", 2), lambda p: 0.3)
        assert engine.cache_misses == 3
        assert engine.cache_hits == 0

    def test_begin_step_clears_memo(self, val_dataset):
        engine = self._engine(val_dataset)
        engine.begin_step(0)
        engine.evaluate(("a", 4), lambda p: 0.1)
        engine.begin_step(1)
        assert engine.evaluate(("a", 4), lambda p: 0.9) == 0.9
        assert engine.cache_misses == 2
        # Lifetime counters survive the step boundary.
        assert engine.stats()["rounds"] == 2

    def test_memoize_off_always_evaluates(self, val_dataset):
        engine = self._engine(val_dataset, memoize=False)
        engine.begin_step(0)
        losses = [engine.evaluate(("a", 4), lambda p: 0.25)
                  for _ in range(3)]
        assert losses == [0.25] * 3
        assert engine.cache_misses == 3
        assert engine.cache_hits == 0

    def test_record_serves_penalty_from_cache(self, val_dataset):
        engine = self._engine(val_dataset)
        engine.begin_step(0)
        engine.record(("a", 4), 1e3)

        def must_not_run(pinned):
            raise AssertionError("cached penalty should skip evaluation")

        assert engine.evaluate(("a", 4), must_not_run) == 1e3
        assert engine.cache_hits == 1

    def test_failed_eval_not_cached(self, val_dataset):
        engine = self._engine(val_dataset)
        engine.begin_step(0)
        with pytest.raises(RuntimeError):
            engine.evaluate(("a", 4), lambda p: (_ for _ in ()).throw(
                RuntimeError("boom")))
        assert ("a", 4) not in engine._memo
        # A retry can still populate the cache.
        assert engine.evaluate(("a", 4), lambda p: 0.7) == 0.7

    def test_lazy_pin_without_begin_step(self, val_dataset):
        engine = self._engine(val_dataset)
        assert engine.pinned.n_samples == 16


class TestVectorizedPinning:
    def test_sliced_pin_matches_per_sample_fallback(self, val_dataset):
        """The array-slicing fast path and the per-sample loop must pin
        identical batches (no transform runs either way)."""
        from repro.nn.data import ArrayDataset

        # Same arrays, but an identity transform forces the slow path.
        slow_ds = ArrayDataset(
            val_dataset.images, val_dataset.labels,
            transform=lambda img, rng: img,
        )
        fast = pin_probe_batches(DataLoader(val_dataset, batch_size=16))
        slow = pin_probe_batches(DataLoader(slow_ds, batch_size=16))
        assert len(fast) == len(slow)
        for (fi, fl), (si, sl) in zip(fast, slow):
            np.testing.assert_array_equal(fi, si)
            np.testing.assert_array_equal(fl, sl)
            assert fl.dtype == sl.dtype == np.int64

    def test_max_batches_respected_on_fast_path(self, val_dataset):
        pinned = pin_probe_batches(
            DataLoader(val_dataset, batch_size=16), max_batches=1
        )
        assert len(pinned) == 1
        np.testing.assert_array_equal(
            pinned.batches[0][0], val_dataset.images[:16]
        )


class TestPinReuse:
    def test_transform_free_pin_survives_steps(self, val_dataset):
        engine = ProbeEngine(DataLoader(val_dataset, batch_size=16),
                             probe_batches=1)
        engine.begin_step(0)
        first = engine.pinned
        assert engine.pin_version == 1
        engine.begin_step(1)
        assert engine.pinned is first
        assert engine.pin_version == 1

    def test_transformed_dataset_repins_each_step(self, val_dataset):
        from repro.nn.data import ArrayDataset

        ds = ArrayDataset(val_dataset.images, val_dataset.labels,
                          transform=lambda img, rng: img)
        engine = ProbeEngine(DataLoader(ds, batch_size=16),
                             probe_batches=1)
        engine.begin_step(0)
        engine.begin_step(1)
        assert engine.pin_version == 2

    def test_lazy_pin_is_reused_by_first_begin_step(self, val_dataset):
        engine = ProbeEngine(DataLoader(val_dataset, batch_size=16),
                             probe_batches=1)
        pinned = engine.pinned  # lazy pin before any step
        engine.begin_step(0)
        assert engine.pinned is pinned
        assert engine.pin_version == 1


class TestFailedEvalTiming:
    def test_failed_eval_lands_in_failed_histogram(self, val_dataset):
        from repro.telemetry import Telemetry

        telemetry = Telemetry.in_memory()
        engine = ProbeEngine(DataLoader(val_dataset, batch_size=16),
                             probe_batches=1, telemetry=telemetry)
        engine.begin_step(0)

        def explode(pinned):
            raise RuntimeError("diverged")

        with pytest.raises(RuntimeError):
            engine.evaluate(("a", 4), explode)
        assert telemetry.histogram("ccq.probe_eval_failed_s").count == 1
        assert telemetry.histogram("ccq.probe_eval_s").count == 0

        engine.evaluate(("a", 4), lambda p: 0.5)
        assert telemetry.histogram("ccq.probe_eval_s").count == 1


class TestPrefetchedOutcomes:
    def test_prefetched_loss_served_without_eval(self, val_dataset):
        from repro.core.probe import ProbeOutcome

        engine = ProbeEngine(DataLoader(val_dataset, batch_size=16),
                             probe_batches=1)
        engine.begin_step(0)
        engine.prefetch({("a", 4): ProbeOutcome(loss=0.25, elapsed=0.01,
                                                worker=1)})

        def must_not_run(pinned):
            raise AssertionError("prefetched candidate re-evaluated")

        assert engine.evaluate(("a", 4), must_not_run) == 0.25
        assert engine.cache_misses == 1
        # Consumed once, it is memoized like a serial evaluation.
        assert engine.evaluate(("a", 4), must_not_run) == 0.25
        assert engine.cache_hits == 1

    def test_prefetched_divergence_reraises_at_consumption(
        self, val_dataset
    ):
        from repro.core.probe import ProbeOutcome
        from repro.core.resilience import DivergenceError

        engine = ProbeEngine(DataLoader(val_dataset, batch_size=16),
                             probe_batches=1)
        engine.begin_step(0)
        engine.prefetch({("a", 4): ProbeOutcome(
            diverged=True, message="loss is nan", stage="probe",
            batch_index=0, value=float("nan"), elapsed=0.01,
        )})
        with pytest.raises(DivergenceError) as excinfo:
            engine.evaluate(("a", 4), lambda p: 0.5)
        assert excinfo.value.stage == "probe"
        assert excinfo.value.batch_index == 0

    def test_prefetched_survive_memoize_off(self, val_dataset):
        from repro.core.probe import ProbeOutcome

        engine = ProbeEngine(DataLoader(val_dataset, batch_size=16),
                             probe_batches=1, memoize=False)
        engine.begin_step(0)
        engine.prefetch({("a", 4): ProbeOutcome(loss=0.25)})
        for _ in range(3):
            assert engine.evaluate(
                ("a", 4),
                lambda p: (_ for _ in ()).throw(AssertionError()),
            ) == 0.25
        assert engine.cache_misses == 3

    def test_begin_step_drops_prefetched(self, val_dataset):
        from repro.core.probe import ProbeOutcome

        engine = ProbeEngine(DataLoader(val_dataset, batch_size=16),
                             probe_batches=1)
        engine.begin_step(0)
        engine.prefetch({("a", 4): ProbeOutcome(loss=0.25)})
        engine.begin_step(1)
        assert engine.evaluate(("a", 4), lambda p: 0.75) == 0.75
