"""SVG chart writer: structure and scaling checks."""

import xml.etree.ElementTree as ET

import pytest

from repro.utils.svg import Series, bar_chart, line_chart

NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestSeries:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Series("a", [1, 2], [1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Series("a", [], [])


class TestLineChart:
    def test_valid_xml(self):
        svg = line_chart([Series("s", [0, 1, 2], [1.0, 3.0, 2.0])],
                         title="t", x_label="x", y_label="y")
        root = parse(svg)
        assert root.tag == f"{NS}svg"

    def test_one_polyline_per_series(self):
        svg = line_chart([
            Series("a", [0, 1], [0, 1]),
            Series("b", [0, 1], [1, 0]),
        ])
        root = parse(svg)
        polylines = root.findall(f"{NS}polyline")
        assert len(polylines) == 2

    def test_title_and_labels_present(self):
        svg = line_chart([Series("s", [0, 1], [0, 1])],
                         title="My Title", x_label="epochs", y_label="acc")
        assert "My Title" in svg
        assert "epochs" in svg and "acc" in svg

    def test_points_inside_viewbox(self):
        svg = line_chart([Series("s", [0, 100], [-5.0, 5.0])],
                         width=500, height=300)
        root = parse(svg)
        for circle in root.findall(f"{NS}circle"):
            assert 0 <= float(circle.get("cx")) <= 500
            assert 0 <= float(circle.get("cy")) <= 300

    def test_escapes_markup_in_labels(self):
        svg = line_chart([Series("a<b", [0, 1], [0, 1])], title="x & y")
        parse(svg)  # must stay well-formed
        assert "a&lt;b" in svg and "x &amp; y" in svg

    def test_no_series_rejected(self):
        with pytest.raises(ValueError):
            line_chart([])

    def test_constant_series_renders(self):
        svg = line_chart([Series("flat", [0, 1, 2], [5.0, 5.0, 5.0])])
        parse(svg)


class TestBarChart:
    def test_bar_count(self):
        svg = bar_chart(
            ["g1", "g2"],
            [("a", [1.0, 2.0]), ("b", [3.0, 4.0])],
        )
        root = parse(svg)
        rects = root.findall(f"{NS}rect")
        # background + frame + 4 bars + 2 legend swatches
        assert len(rects) == 2 + 4 + 2

    def test_log_scale_orders_heights(self):
        svg = bar_chart(
            ["g"], [("small", [0.01]), ("big", [100.0])], log_scale=True
        )
        root = parse(svg)
        bars = [
            r for r in root.findall(f"{NS}rect")
            if r.find(f"{NS}title") is not None
        ]
        heights = [float(b.get("height")) for b in bars]
        assert heights[1] > heights[0]

    def test_log_scale_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            bar_chart(["g"], [("a", [0.0])], log_scale=True)

    def test_group_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bar_chart(["g1", "g2"], [("a", [1.0])])

    def test_values_in_tooltips(self):
        svg = bar_chart(["g"], [("a", [42.0])])
        assert "42" in svg
