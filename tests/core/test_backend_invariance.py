"""Kernel-backend selection must be invisible to the CCQ trajectory.

Acceptance for the pluggable backend (mirroring the worker-count
invariance contract): with any registered backend the CCQ trajectory —
winners, bit configuration, per-round probe losses, per-step
accuracies, journal contents — is bit-for-bit identical to the
``reference`` run, serial or pooled.  The backend is therefore excluded
from the checkpoint fingerprint, exactly like ``probe_workers``.
"""

import numpy as np
import pytest

from repro import models
from repro.core import CCQQuantizer
from repro.nn import backends
from repro.nn.data import DataLoader
from repro.quantization import quantize_model

from .test_parallel_invariance import journal_payload, probe_trace
from .test_probe_determinism import make_config, trajectory


@pytest.fixture()
def run_factory(pretrained_state, tiny_splits):
    state, _ = pretrained_state

    def build():
        net = models.SmallConvNet(width=8, rng=np.random.default_rng(0))
        net.load_state_dict(state)
        quantize_model(net, "pact")
        train = DataLoader(tiny_splits.train, batch_size=64, shuffle=True,
                           seed=0)
        val = DataLoader(tiny_splits.val, batch_size=100, shuffle=True,
                         seed=7)
        return net, train, val

    return build


class TestBackendInvariance:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_trajectory_and_journal_identical(self, run_factory, tmp_path,
                                              workers):
        results = {}
        journals = {}
        for name in ("reference", "fast"):
            net, train, val = run_factory()
            with backends.use_backend(name):
                quantizer = CCQQuantizer(
                    net, train, val,
                    config=make_config(
                        tmp_path / f"ckpt-{name}-{workers}",
                        max_steps=3, probe_workers=workers,
                    ),
                )
                results[name] = quantizer.run()
                if workers > 0:
                    # The pooled runs really used the pool (a silent
                    # serial fallback would make this test vacuous).
                    assert not quantizer._pool_failed
            journals[name] = journal_payload(quantizer.store.journal)

        assert trajectory(results["fast"]) == trajectory(results["reference"])
        # Stronger than winners: every probe round observed the
        # bit-identical loss, in the identical draw order.
        assert (
            probe_trace(results["fast"])
            == probe_trace(results["reference"])
        )
        assert (
            results["fast"].probe_rounds
            == results["reference"].probe_rounds
        )
        assert journals["fast"] == journals["reference"]

    def test_backend_switch_does_not_invalidate_checkpoint(
        self, run_factory, tmp_path
    ):
        """The backend never appears in the checkpoint fingerprint, so
        finishing a ``reference`` run's checkpoint under ``fast`` must
        resume instead of restarting."""
        ckpt = tmp_path / "ckpt"
        net, train, val = run_factory()
        with backends.use_backend("reference"):
            CCQQuantizer(
                net, train, val, config=make_config(ckpt, max_steps=2)
            ).run()

        net, train, val = run_factory()
        with backends.use_backend("fast"):
            result = CCQQuantizer(
                net, train, val, config=make_config(ckpt)
            ).run(resume=True)
        assert [r.step for r in result.records] == list(range(8))
