"""Layer-sensitivity scanning."""

import numpy as np
import pytest

from repro.core import BitLadder
from repro.core.analysis import scan_layer_sensitivity
from repro.quantization import get_bit_config, quantize_model, quantized_layers


@pytest.fixture()
def quantized_pretrained(pretrained_net):
    net, baseline = pretrained_net
    quantize_model(net, "pact")
    return net, baseline


class TestScan:
    def test_probe_grid_complete(self, quantized_pretrained, tiny_loaders):
        net, _ = quantized_pretrained
        _, val = tiny_loaders
        ladder = BitLadder((8, 2))
        report = scan_layer_sensitivity(net, val, ladder=ladder, max_batches=1)
        layers = [n for n, _ in quantized_layers(net)]
        assert len(report.probes) == len(layers) * 2
        by_layer = report.by_layer()
        assert set(by_layer) == set(layers)

    def test_configuration_restored(self, quantized_pretrained, tiny_loaders):
        net, _ = quantized_pretrained
        _, val = tiny_loaders
        before = get_bit_config(net)
        scan_layer_sensitivity(net, val, ladder=BitLadder((4, 2)),
                               max_batches=1)
        assert get_bit_config(net) == before

    def test_subset_of_layers(self, quantized_pretrained, tiny_loaders):
        net, _ = quantized_pretrained
        _, val = tiny_loaders
        names = [n for n, _ in quantized_layers(net)][:2]
        report = scan_layer_sensitivity(
            net, val, ladder=BitLadder((4, 2)), layers=names, max_batches=1
        )
        assert set(report.by_layer()) == set(names)

    def test_unknown_layer_rejected(self, quantized_pretrained, tiny_loaders):
        net, _ = quantized_pretrained
        _, val = tiny_loaders
        with pytest.raises(KeyError):
            scan_layer_sensitivity(net, val, layers=["nope"])

    def test_unquantized_model_rejected(self, pretrained_net, tiny_loaders):
        from repro import models

        _, val = tiny_loaders
        net = models.SmallConvNet(width=4)
        with pytest.raises(ValueError):
            scan_layer_sensitivity(net, val)

    def test_low_bits_hurt_more(self, quantized_pretrained, tiny_loaders):
        net, _ = quantized_pretrained
        _, val = tiny_loaders
        report = scan_layer_sensitivity(net, val, ladder=BitLadder((8, 2)))
        by_layer = report.by_layer()
        # Across the whole net, 2-bit probes must hurt at least as much
        # as 8-bit probes on average.
        loss8 = np.mean([p.loss for ps in by_layer.values()
                         for p in ps if p.bits == 8])
        loss2 = np.mean([p.loss for ps in by_layer.values()
                         for p in ps if p.bits == 2])
        assert loss2 >= loss8 - 1e-6

    def test_ranking_orders_by_sensitivity(self, quantized_pretrained,
                                           tiny_loaders):
        net, _ = quantized_pretrained
        _, val = tiny_loaders
        report = scan_layer_sensitivity(net, val, ladder=BitLadder((8, 2)),
                                        max_batches=1)
        ranking = report.ranking(2)
        deltas = [delta for _, delta in ranking]
        assert deltas == sorted(deltas, reverse=True)
        robust = report.most_robust(2, k=2)
        assert len(robust) == 2
        assert robust[0] == ranking[-1][0]
