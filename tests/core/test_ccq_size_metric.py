"""Hardware-aware (MAC-weighted) competition mixing."""

import numpy as np
import pytest

from repro.core import BitLadder, CCQConfig, CCQQuantizer, RecoveryConfig
from repro.quantization import quantize_model


def fast_config(**overrides):
    defaults = dict(
        ladder=BitLadder((8, 4)),
        probes_per_step=1,
        probe_batches=1,
        recovery=RecoveryConfig(mode="manual", epochs=0, use_hybrid_lr=False),
        initial_recovery_epochs=0,
        initial_recovery_adaptive=False,
        seed=0,
    )
    defaults.update(overrides)
    return CCQConfig(**defaults)


@pytest.fixture()
def quantized_pretrained(pretrained_net):
    net, baseline = pretrained_net
    quantize_model(net, "pact")
    return net, baseline


class TestSizeMetric:
    def test_macs_requires_input_shape(self, quantized_pretrained,
                                       tiny_loaders):
        net, _ = quantized_pretrained
        train, val = tiny_loaders
        with pytest.raises(ValueError, match="input_shape"):
            CCQQuantizer(net, train, val,
                         config=fast_config(size_metric="macs"))

    def test_invalid_metric_rejected(self, quantized_pretrained,
                                     tiny_loaders):
        net, _ = quantized_pretrained
        train, val = tiny_loaders
        with pytest.raises(ValueError, match="size_metric"):
            CCQQuantizer(net, train, val,
                         config=fast_config(size_metric="latency"))

    def test_mac_sizes_differ_from_memory_sizes(self, quantized_pretrained,
                                                tiny_loaders):
        net, _ = quantized_pretrained
        train, val = tiny_loaders
        mem = CCQQuantizer(net, train, val, config=fast_config())
        mem.initialize()
        mem_sizes = np.asarray(mem._layer_sizes())

        net2, _ = quantized_pretrained, None
        mac = CCQQuantizer(
            net, train, val,
            config=fast_config(size_metric="macs",
                               input_shape=(3, 12, 12)),
        )
        mac_sizes = np.asarray(mac._layer_sizes())
        # Normalized distributions must differ: conv1 has few params but
        # many MACs (full spatial resolution).
        mem_p = mem_sizes / mem_sizes.sum()
        mac_p = mac_sizes / mac_sizes.sum()
        assert not np.allclose(mem_p, mac_p)
        # conv1 (expert 0) is relatively much bigger by MACs.
        assert mac_p[0] > mem_p[0]

    def test_mac_sizes_scale_with_bits(self, quantized_pretrained,
                                       tiny_loaders):
        net, _ = quantized_pretrained
        train, val = tiny_loaders
        ccq = CCQQuantizer(
            net, train, val,
            config=fast_config(size_metric="macs",
                               input_shape=(3, 12, 12)),
        )
        ccq.initialize()  # all at 8 bits
        at8 = np.asarray(ccq._layer_sizes())
        ccq._set_bits(0, 4)
        at4 = np.asarray(ccq._layer_sizes())
        assert at4[0] == pytest.approx(at8[0] / 2)

    def test_full_run_with_macs_metric(self, quantized_pretrained,
                                       tiny_loaders):
        from repro.core import LambdaSchedule

        net, _ = quantized_pretrained
        train, val = tiny_loaders
        ccq = CCQQuantizer(
            net, train, val,
            config=fast_config(
                size_metric="macs",
                input_shape=(3, 12, 12),
                lambda_schedule=LambdaSchedule.constant(0.8),
                max_steps=3,
            ),
        )
        result = ccq.run()
        assert len(result.records) == 3
