"""Data-parallel recovery training: the worker count must be invisible.

Acceptance for the DDP backend (``docs/ddp.md``): with
``recovery.trainer="ddp"`` the SGD trajectory — per-epoch losses,
updated weight bytes, and at the CCQ level the step trace and journal —
is bit-for-bit identical for ``recover_workers`` 0 (in-process shards),
1, 2 and 4, because the shard plan and the all-reduce order are fixed
by ``grad_shards`` alone.  ``grad_shards=1`` degenerates to the serial
reference loop exactly.  A pool that cannot start (or dies mid-round)
falls back without perturbing a single bit.
"""

import numpy as np
import pytest

import repro.parallel.worker as worker_mod
from repro import models
from repro.core import CCQQuantizer, RecoveryConfig
from repro.core.training import make_sgd, train_epoch
from repro.nn.data import DataLoader
from repro.nn.serialization import named_state_arrays
from repro.parallel import DDPTrainer, PoolError, plan_shards
from repro.quantization import quantize_model
from repro.telemetry import Telemetry

from .fault_injection import WorkerFaultInjector
from .test_chaos import counters
from .test_parallel_invariance import journal_payload, probe_trace
from .test_probe_determinism import make_config, trajectory


@pytest.fixture()
def train_factory(pretrained_state, tiny_splits):
    """(model, train loader, optimizer) triples with identical state."""
    state, _ = pretrained_state

    def build():
        net = models.SmallConvNet(width=8, rng=np.random.default_rng(0))
        net.load_state_dict(state)
        quantize_model(net, "pact")
        train = DataLoader(tiny_splits.train, batch_size=64, shuffle=True,
                           seed=0)
        optimizer = make_sgd(net, lr=0.02)
        return net, train, optimizer

    return build


@pytest.fixture()
def run_factory(pretrained_state, tiny_splits):
    state, _ = pretrained_state

    def build():
        net = models.SmallConvNet(width=8, rng=np.random.default_rng(0))
        net.load_state_dict(state)
        quantize_model(net, "pact")
        train = DataLoader(tiny_splits.train, batch_size=64, shuffle=True,
                           seed=0)
        val = DataLoader(tiny_splits.val, batch_size=100, shuffle=True,
                         seed=7)
        return net, train, val

    return build


def ddp_config(checkpoint_dir=None, **overrides):
    defaults = dict(
        recovery=RecoveryConfig(
            mode="manual", epochs=1, use_hybrid_lr=False,
            trainer="ddp", grad_shards=4, max_batches_per_epoch=5,
        ),
        max_steps=3,
    )
    defaults.update(overrides)
    return make_config(checkpoint_dir, **defaults)


def weight_bytes(model):
    return {
        name: array.tobytes()
        for name, array in named_state_arrays(model).items()
    }


class CountingLoader:
    """Pass-through wrapper that counts the batches actually served."""

    def __init__(self, loader):
        self.loader = loader
        self.batches_served = 0

    def __getattr__(self, name):
        return getattr(self.loader, name)

    def __len__(self):
        return len(self.loader)

    def __iter__(self):
        for batch in self.loader:
            self.batches_served += 1
            yield batch


class TestPlanShards:
    def test_contiguous_and_balanced(self):
        assert plan_shards(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]
        assert plan_shards(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]
        assert plan_shards(7, 4) == [(0, 2), (2, 4), (4, 6), (6, 7)]

    def test_degenerate_counts(self):
        assert plan_shards(5, 1) == [(0, 5)]
        # Never more shards than examples, never zero shards.
        assert plan_shards(3, 8) == [(0, 1), (1, 2), (2, 3)]
        assert plan_shards(4, 0) == [(0, 4)]

    def test_covers_batch_exactly(self):
        for batch, shards in ((64, 4), (65, 4), (17, 3), (100, 7)):
            bounds = plan_shards(batch, shards)
            assert bounds[0][0] == 0 and bounds[-1][1] == batch
            for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                assert stop == start


class TestTrainerEquivalence:
    def test_one_shard_matches_serial_reference_bitwise(
        self, train_factory
    ):
        net_s, train_s, opt_s = train_factory()
        loss_s = train_epoch(net_s, train_s, opt_s, max_batches=5)

        net_d, train_d, opt_d = train_factory()
        trainer = DDPTrainer(net_d, grad_shards=1, workers=0)
        loss_d = trainer(net_d, train_d, opt_d, max_batches=5)

        assert loss_d == loss_s
        assert weight_bytes(net_d) == weight_bytes(net_s)

    def test_worker_count_invariant_at_weight_byte_granularity(
        self, train_factory
    ):
        reference = None
        for workers in (0, 1, 2, 4):
            net, train, optimizer = train_factory()
            if workers == 0:
                trainer = DDPTrainer(net, grad_shards=4, workers=0)
                loss = trainer(net, train, optimizer, max_batches=5)
            else:
                trainer = DDPTrainer.standalone(
                    net, workers=workers, grad_shards=4
                )
                try:
                    loss = trainer(net, train, optimizer, max_batches=5)
                finally:
                    trainer.close()
                # The pooled runs really sharded across processes (a
                # silent fallback would make this test vacuous).
                assert not trainer.degraded
            observed = (loss, weight_bytes(net))
            if reference is None:
                reference = observed
            else:
                assert observed == reference

    def test_batch_cap_not_divisible_by_workers(self, train_factory):
        """cap=7 with 4 workers must consume exactly the serial batch
        sequence — no rounding to worker multiples, no extra draws."""
        net_0, train_0, opt_0 = train_factory()
        counted_0 = CountingLoader(train_0)
        serial_served_ref = train_epoch(
            net_0, counted_0, opt_0, max_batches=7
        )
        serial_draws = counted_0.batches_served

        net_s, train_s, opt_s = train_factory()
        counted_s = CountingLoader(train_s)
        trainer_s = DDPTrainer(net_s, grad_shards=4, workers=0)
        loss_s = trainer_s(net_s, counted_s, opt_s, max_batches=7)
        assert counted_s.batches_served == serial_draws

        net_p, train_p, opt_p = train_factory()
        counted_p = CountingLoader(train_p)
        trainer_p = DDPTrainer.standalone(net_p, workers=4, grad_shards=4)
        try:
            loss_p = trainer_p(net_p, counted_p, opt_p, max_batches=7)
        finally:
            trainer_p.close()
        assert not trainer_p.degraded
        assert counted_p.batches_served == serial_draws
        assert loss_p == loss_s
        assert weight_bytes(net_p) == weight_bytes(net_s)

    def test_worker_kill_mid_round_is_salvaged_bitwise(
        self, train_factory, monkeypatch, tmp_path
    ):
        """A worker dying on its shard changes where the gradient is
        computed (respawn + requeue, or in-process salvage), never its
        bytes."""
        net_r, train_r, opt_r = train_factory()
        trainer_r = DDPTrainer(net_r, grad_shards=4, workers=0)
        loss_r = trainer_r(net_r, train_r, opt_r, max_batches=3)

        monkeypatch.setattr(worker_mod, "FAULT_HOOK", WorkerFaultInjector(
            tmp_path / "faults", kill_on={(0, 1)},
        ))
        net_k, train_k, opt_k = train_factory()
        trainer_k = DDPTrainer.standalone(net_k, workers=2, grad_shards=4)
        try:
            loss_k = trainer_k(net_k, train_k, opt_k, max_batches=3)
        finally:
            trainer_k.close()

        assert loss_k == loss_r
        assert weight_bytes(net_k) == weight_bytes(net_r)


class TestCCQWorkerCountInvariance:
    def test_trajectory_journal_and_weights_identical(
        self, run_factory, tmp_path
    ):
        results = {}
        for workers in (0, 1, 2, 4):
            net, train, val = run_factory()
            quantizer = CCQQuantizer(
                net, train, val,
                config=ddp_config(
                    tmp_path / f"ckpt{workers}",
                    recover_workers=workers,
                    probe_workers=workers,
                ),
            )
            result = quantizer.run()
            if workers > 0:
                assert not quantizer._pool_failed
                assert quantizer._ddp_trainer is not None
                assert not quantizer._ddp_trainer.degraded
            results[workers] = (
                trajectory(result),
                probe_trace(result),
                journal_payload(quantizer.store.journal),
                weight_bytes(net),
            )

        serial = results[0]
        for workers in (1, 2, 4):
            assert results[workers] == serial


class TestRecoveryFallback:
    def test_pool_start_failure_degrades_to_in_process_shards(
        self, run_factory, monkeypatch
    ):
        import repro.parallel

        def refuse(*args, **kwargs):
            raise PoolError("no processes in this sandbox")

        net, train, val = run_factory()
        reference = CCQQuantizer(
            net, train, val, config=ddp_config(recover_workers=0)
        )
        ref_result = reference.run()

        monkeypatch.setattr(repro.parallel, "create_probe_pool", refuse)
        net, train, val = run_factory()
        telemetry = Telemetry.create(log_level="silent")
        quantizer = CCQQuantizer(
            net, train, val,
            config=ddp_config(recover_workers=2),
            telemetry=telemetry,
        )
        result = quantizer.run()
        telemetry.close()

        assert trajectory(result) == trajectory(ref_result)
        assert weight_bytes(net) == weight_bytes(reference.model)


class TestSpeculativePipelining:
    def test_pipeline_is_trajectory_and_journal_neutral(
        self, run_factory, tmp_path
    ):
        runs = {}
        hits = {}
        for pipeline in (False, True):
            net, train, val = run_factory()
            telemetry = Telemetry.create(log_level="silent")
            quantizer = CCQQuantizer(
                net, train, val,
                config=make_config(
                    tmp_path / f"ckpt-{pipeline}",
                    max_steps=3, probe_workers=2,
                    probe_pipeline=pipeline,
                ),
                telemetry=telemetry,
            )
            result = quantizer.run()
            telemetry.close()
            assert not quantizer._pool_failed
            runs[pipeline] = (
                trajectory(result),
                probe_trace(result),
                journal_payload(quantizer.store.journal),
            )
            hits[pipeline] = counters(telemetry).get(
                "ccq.spec_probe_hits", 0
            )

        assert runs[True] == runs[False]
        # The pipelined run really speculated; the plain run never did.
        assert hits[True] > 0
        assert hits[False] == 0
