"""ASCII plotting utilities."""

from repro.utils import ascii_plot, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        assert sparkline([2.0, 2.0, 2.0]) == "▁▁▁"

    def test_monotone_series_monotone_glyphs(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line == "▁▂▃▄▅▆▇█"

    def test_length_preserved(self):
        assert len(sparkline(range(13))) == 13


class TestAsciiPlot:
    def test_empty(self):
        assert "empty" in ascii_plot([])

    def test_contains_extremes(self):
        out = ascii_plot([0.0, 0.5, 1.0], height=5)
        assert "1.000" in out and "0.000" in out

    def test_height_rows(self):
        out = ascii_plot([1, 2, 3], height=7)
        # label-less: height rows + axis line
        assert len(out.splitlines()) == 8

    def test_label_included(self):
        out = ascii_plot([1, 2], label="accuracy")
        assert out.splitlines()[0] == "accuracy"

    def test_width_resampling(self):
        out = ascii_plot(list(range(100)), height=4, width=20)
        body = out.splitlines()[0]
        assert len(body) <= 8 + 2 + 20  # prefix + bar + columns

    def test_one_star_per_column(self):
        out = ascii_plot([1, 5, 3], height=6)
        stars = sum(line.count("*") for line in out.splitlines())
        assert stars == 3
