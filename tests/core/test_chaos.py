"""Chaos acceptance: CCQ under injected worker faults.

The self-healing contract of the supervised probe pool
(``docs/resilience.md``): worker kills, hangs, corrupt results and even
a crash *during* a respawn may change where a probe loss is computed,
but never which loss the competition observes.  Every test here runs a
real multi-worker CCQ search with ``WorkerFaultInjector`` wired into
the forked workers and asserts the trajectory — and where a journal
exists, the journal — stays bit-identical to the serial run while the
telemetry records the healing that happened.
"""

import numpy as np
import pytest

import repro.parallel.worker as worker_mod
from repro import models
from repro.core import CCQQuantizer
from repro.nn.data import DataLoader
from repro.parallel import PoolError, ProbeWorkerPool
from repro.quantization import quantize_model, quantized_layers
from repro.telemetry import Telemetry

from .fault_injection import SimulatedKill, WorkerFaultInjector
from .test_parallel_invariance import journal_payload, probe_trace
from .test_probe_determinism import make_config, trajectory


@pytest.fixture()
def run_factory(pretrained_state, tiny_splits):
    state, _ = pretrained_state

    def build():
        net = models.SmallConvNet(width=8, rng=np.random.default_rng(0))
        net.load_state_dict(state)
        quantize_model(net, "pact")
        train = DataLoader(tiny_splits.train, batch_size=64, shuffle=True,
                           seed=0)
        val = DataLoader(tiny_splits.val, batch_size=100, shuffle=True,
                         seed=7)
        return net, train, val

    return build


@pytest.fixture()
def install_hook(monkeypatch):
    def install(injector):
        monkeypatch.setattr(worker_mod, "FAULT_HOOK", injector)
        return injector

    return install


def counters(telemetry):
    return {
        entry["name"]: entry["value"]
        for entry in telemetry.registry.snapshot()["counters"]
        if not entry.get("labels")
    }


class TestChaosTrajectory:
    def test_kills_and_hangs_leave_trajectory_and_journal_identical(
        self, run_factory, install_hook, tmp_path
    ):
        """The headline acceptance test: a 4-worker run peppered with
        worker kills and a hang matches the serial run bit for bit."""
        net, train, val = run_factory()
        serial_q = CCQQuantizer(
            net, train, val,
            config=make_config(tmp_path / "ckpt0", max_steps=3),
        )
        serial = serial_q.run()

        install_hook(WorkerFaultInjector(
            tmp_path / "faults",
            # Two kills on different workers at different steps, plus
            # one hang the adaptive deadline must reap.
            kill_on={(0, 0), (1, 2)},
            hang_on={(2, 1)},
            hang_seconds=60.0,
        ))
        net, train, val = run_factory()
        telemetry = Telemetry.create(log_level="silent")
        chaos_q = CCQQuantizer(
            net, train, val,
            config=make_config(
                tmp_path / "ckpt4", max_steps=3, probe_workers=4,
                probe_timeout=2.0,
            ),
            telemetry=telemetry,
        )
        chaos = chaos_q.run()
        telemetry.close()

        # The faults really happened and really were healed.
        seen = counters(telemetry)
        assert seen.get("ccq.pool_respawns", 0) >= 1
        assert seen.get("ccq.pool_salvaged_results", 0) >= 1
        # ... without demoting the run to serial.
        assert not chaos_q._pool_failed

        # And none of it is visible to the search.
        assert trajectory(chaos) == trajectory(serial)
        assert probe_trace(chaos) == probe_trace(serial)
        assert chaos.probe_rounds == serial.probe_rounds
        assert journal_payload(chaos_q.store.journal) == journal_payload(
            serial_q.store.journal
        )

    def test_crash_looping_candidate_is_quarantined(
        self, run_factory, install_hook, tmp_path
    ):
        net, train, val = run_factory()
        serial = CCQQuantizer(
            net, train, val, config=make_config(max_steps=2)
        ).run()

        net, train, val = run_factory()
        # Poison one layer: every worker that evaluates it dies, so the
        # candidate crashes its first worker, crashes the requeue
        # target, and is then quarantined to the serial path.
        poison = next(iter(dict(quantized_layers(net))))
        install_hook(WorkerFaultInjector(tmp_path / "faults",
                                         kill_layers=[poison]))
        telemetry = Telemetry.create(log_level="silent")
        chaos_q = CCQQuantizer(
            net, train, val,
            config=make_config(max_steps=2, probe_workers=2,
                               pool_respawn_budget=8),
            telemetry=telemetry,
        )
        chaos = chaos_q.run()
        telemetry.close()

        seen = counters(telemetry)
        assert seen.get("ccq.quarantined_candidates", 0) >= 1
        assert seen.get("ccq.pool_respawns", 0) >= 2
        # The quarantined candidate evaluated serially: same losses,
        # same trajectory.
        assert trajectory(chaos) == trajectory(serial)
        assert probe_trace(chaos) == probe_trace(serial)


class TestRePromotion:
    def test_pool_is_retried_after_clean_serial_steps(
        self, run_factory, monkeypatch, tmp_path
    ):
        class DyingPool:
            n_workers = 2

            def __init__(self):
                self.closed = False

            def broadcast(self, *args, **kwargs):
                raise PoolError("transient node fault")

            def close(self):
                self.closed = True

        import repro.parallel

        real_create = repro.parallel.create_probe_pool
        created = []

        def flaky_create(*args, **kwargs):
            if not created:
                pool = DyingPool()
            else:
                pool = real_create(*args, **kwargs)
            created.append(pool)
            return pool

        monkeypatch.setattr(
            repro.parallel, "create_probe_pool", flaky_create
        )

        net, train, val = run_factory()
        serial = CCQQuantizer(
            net, train, val, config=make_config(max_steps=3)
        ).run()

        net, train, val = run_factory()
        telemetry = Telemetry.create(log_level="silent")
        quantizer = CCQQuantizer(
            net, train, val,
            config=make_config(max_steps=3, probe_workers=2,
                               pool_repromote_after=1),
            telemetry=telemetry,
        )
        result = quantizer.run()
        telemetry.close()

        # Step 0 degraded on the dying pool; after one clean serial
        # step the pool was re-promoted with a real pool and stuck.
        assert len(created) == 2
        assert created[0].closed
        assert counters(telemetry).get("ccq.pool_repromotions", 0) == 1
        assert not quantizer._pool_failed
        assert trajectory(result) == trajectory(serial)


class TestKillMidRespawnResume:
    def test_resume_after_death_during_respawn_is_deterministic(
        self, run_factory, install_hook, monkeypatch, tmp_path
    ):
        """The nastiest crash window: the run dies *while healing* a
        worker fault.  Resume must still reproduce the reference."""
        ckpt = tmp_path / "ckpt"

        net, train, val = run_factory()
        reference = CCQQuantizer(
            net, train, val,
            config=make_config(max_steps=4, probe_workers=2),
        ).run()

        with monkeypatch.context() as m:
            # Worker 0's third eval lands in step >= 1 (so a checkpoint
            # exists); the respawn it triggers hits simulated power loss.
            m.setattr(worker_mod, "FAULT_HOOK", WorkerFaultInjector(
                tmp_path / "faults", kill_on={(0, 2)},
            ))

            def power_loss(self, worker_id):
                raise SimulatedKill("died mid-respawn")

            m.setattr(ProbeWorkerPool, "respawn_worker", power_loss)

            net, train, val = run_factory()
            interrupted = CCQQuantizer(
                net, train, val,
                config=make_config(ckpt, max_steps=4, probe_workers=2),
            )
            with pytest.raises(SimulatedKill):
                interrupted.run()
            interrupted._close_pool()
            assert interrupted.store.journal.events("step_complete")

        # Fresh process model, fault-free workers.
        net, train, val = run_factory()
        resumed = CCQQuantizer(
            net, train, val,
            config=make_config(ckpt, max_steps=4, probe_workers=2),
        )
        result = resumed.run(resume=True)

        assert trajectory(result) == trajectory(reference)
        assert probe_trace(result) == probe_trace(reference)
        assert result.probe_rounds == reference.probe_rounds


class TestKillDuringSpeculationResume:
    def test_resume_after_death_mid_speculative_round(
        self, run_factory, install_hook, monkeypatch, tmp_path
    ):
        """A worker kill that lands inside a *speculative* probe round
        (``probe_pipeline``): the parent only notices at collection
        time, its respawn hits simulated power loss mid-overlap, and
        the resumed run must still reproduce the reference journal bit
        for bit."""
        ckpt = tmp_path / "ckpt"

        net, train, val = run_factory()
        reference_q = CCQQuantizer(
            net, train, val,
            config=make_config(tmp_path / "ckpt-ref", max_steps=4,
                               probe_workers=2),
        )
        reference = reference_q.run()

        with monkeypatch.context() as m:
            # With 2 workers round-robinning ~4 candidates, worker 0's
            # evals 0-1 serve step 0's (non-speculative) round; eval 2
            # lands in the speculative round for step 1 that is
            # submitted while step 0 finishes its tail.
            m.setattr(worker_mod, "FAULT_HOOK", WorkerFaultInjector(
                tmp_path / "faults", kill_on={(0, 2)},
            ))

            def power_loss(self, worker_id):
                raise SimulatedKill("died mid-speculation")

            m.setattr(ProbeWorkerPool, "respawn_worker", power_loss)

            net, train, val = run_factory()
            interrupted = CCQQuantizer(
                net, train, val,
                config=make_config(ckpt, max_steps=4, probe_workers=2),
            )
            with pytest.raises(SimulatedKill):
                interrupted.run()
            interrupted._close_pool()
            # The crash window is real: at least one step completed
            # before the speculative round's healing died.
            assert interrupted.store.journal.events("step_complete")

        net, train, val = run_factory()
        resumed_q = CCQQuantizer(
            net, train, val,
            config=make_config(ckpt, max_steps=4, probe_workers=2),
        )
        result = resumed_q.run(resume=True)

        assert trajectory(result) == trajectory(reference)
        assert probe_trace(result) == probe_trace(reference)
        assert result.probe_rounds == reference.probe_rounds
        # Journal equality across the crash/resume seam: the resumed
        # journal carries extra resume bookkeeping, but every
        # step-level payload must match the reference bit for bit.
        def step_events(journal):
            # The resumed journal's sequence numbers are shifted by its
            # extra resume bookkeeping; the payloads must not be.
            return [
                {
                    k: v for k, v in e.items()
                    if k not in ("ts", "mono", "seq")
                }
                for e in journal.events("step_complete")
            ]

        assert step_events(resumed_q.store.journal) == step_events(
            reference_q.store.journal
        )


class TestCooperativeStop:
    def test_stop_mid_run_checkpoints_and_resumes_exactly(
        self, run_factory, monkeypatch, tmp_path
    ):
        """``request_stop()`` (what the CLI signal guard calls) finishes
        the step in flight, journals ``interrupted``, and leaves a
        checkpoint a later ``--resume`` continues bit-identically."""
        ckpt = tmp_path / "ckpt"

        net, train, val = run_factory()
        reference = CCQQuantizer(
            net, train, val, config=make_config(max_steps=4)
        ).run()

        net, train, val = run_factory()
        stopped = CCQQuantizer(
            net, train, val, config=make_config(ckpt, max_steps=4)
        )
        original = stopped._execute_step

        def stop_after_first(step):
            record = original(step)
            stopped.request_stop()  # as the SIGTERM handler would
            return record

        monkeypatch.setattr(stopped, "_execute_step", stop_after_first)
        partial = stopped.run()

        # The step in flight completed and was checkpointed; the run
        # wound down with the full artifact set of a finished run.
        assert len(partial.records) == 1
        assert partial.final_eval is not None
        journal = stopped.store.journal
        assert journal.events("interrupted")
        assert journal.events("run_complete")

        net, train, val = run_factory()
        resumed = CCQQuantizer(
            net, train, val, config=make_config(ckpt, max_steps=4)
        )
        result = resumed.run(resume=True)
        assert trajectory(result) == trajectory(reference)
