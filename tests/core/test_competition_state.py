"""HedgeCompetition state round-trips.

The resume machinery relies on a serialized-and-restored competition
behaving *identically* to one that never stopped: same weights, same
loss normalization, and — because the RNG state rides along — the same
probe draws and winner sequence.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.competition import HedgeCompetition


def deterministic_losses(n):
    """A fixed, expert-dependent loss function for probe evaluation."""
    return lambda m: 0.2 + 0.6 * ((m * 7 + 3) % n) / n


class TestStateDictRoundTrip:
    def test_roundtrip_preserves_weights_and_history(self):
        comp = HedgeCompetition(4, gamma=1.2, probes_per_step=3,
                                rng=np.random.default_rng(0))
        comp.run_step(deterministic_losses(4), [True] * 4)
        state = comp.state_dict()

        clone = HedgeCompetition(4, gamma=1.2, probes_per_step=3,
                                 rng=np.random.default_rng(999))
        clone.load_state_dict(state)
        np.testing.assert_array_equal(clone.weights, comp.weights)
        assert clone._loss_history == comp._loss_history
        np.testing.assert_allclose(
            clone.probabilities([True] * 4),
            comp.probabilities([True] * 4),
        )

    def test_state_is_json_serializable(self):
        comp = HedgeCompetition(3, rng=np.random.default_rng(1))
        comp.run_step(deterministic_losses(3), [True] * 3)
        text = json.dumps(comp.state_dict())
        clone = HedgeCompetition(3, rng=np.random.default_rng(2))
        clone.load_state_dict(json.loads(text))
        np.testing.assert_array_equal(clone.weights, comp.weights)

    def test_wrong_expert_count_rejected(self):
        comp = HedgeCompetition(4)
        state = comp.state_dict()
        other = HedgeCompetition(5)
        with pytest.raises(ValueError, match="4 experts"):
            other.load_state_dict(state)

    def test_truncated_weights_rejected(self):
        comp = HedgeCompetition(4)
        state = comp.state_dict()
        state["weights"] = state["weights"][:-1]
        other = HedgeCompetition(4)
        with pytest.raises(ValueError, match="expert weights"):
            other.load_state_dict(state)


class TestWinnerSequenceProperty:
    @given(
        n=st.integers(2, 6),
        seed=st.integers(0, 10_000),
        warmup=st.integers(0, 4),
        horizon=st.integers(1, 6),
    )
    @settings(max_examples=30, deadline=None)
    def test_restored_competition_reproduces_winner_sequence(
        self, n, seed, warmup, horizon
    ):
        """Property: serialize mid-game, restore into a fresh instance
        (with a differently seeded RNG), and both competitions produce
        the identical winner/probe sequence from that point on."""
        losses = deterministic_losses(n)
        comp = HedgeCompetition(n, gamma=1.0, probes_per_step=2,
                                rng=np.random.default_rng(seed))
        for step in range(warmup):
            comp.run_step(losses, [True] * n, step=step)

        # Serialize through real JSON text, as the checkpoint store does.
        state = json.loads(json.dumps(comp.state_dict()))
        clone = HedgeCompetition(n, gamma=1.0, probes_per_step=2,
                                 rng=np.random.default_rng(seed + 12345))
        clone.load_state_dict(state)

        for step in range(warmup, warmup + horizon):
            a = comp.run_step(losses, [True] * n, step=step)
            b = clone.run_step(losses, [True] * n, step=step)
            assert a.winner == b.winner
            assert a.probes == b.probes
            np.testing.assert_array_equal(a.probabilities, b.probabilities)
