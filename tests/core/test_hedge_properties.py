"""Online-learning properties of the Hedge competition.

These verify the theoretical behaviour the paper's competition stage
relies on: with enough observations under stationary losses, the
exponential-weights distribution concentrates on the best expert, and the
regret relative to the best expert stays sublinear.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.competition import HedgeCompetition


class TestConcentration:
    def test_concentrates_on_best_expert(self):
        rng = np.random.default_rng(0)
        losses = np.array([1.0, 0.2, 0.9, 1.1])  # expert 1 is best
        comp = HedgeCompetition(4, gamma=1.0, loss_scale=1.0,
                                rng=np.random.default_rng(0))
        for _ in range(200):
            for m in range(4):
                comp.observe(m, losses[m] + 0.05 * rng.normal())
        p = comp.probabilities([True] * 4)
        assert p[1] > 0.95

    def test_equal_losses_stay_uniform(self):
        comp = HedgeCompetition(5, gamma=2.0, loss_scale=1.0)
        for _ in range(100):
            for m in range(5):
                comp.observe(m, 1.0)
        p = comp.probabilities([True] * 5)
        np.testing.assert_allclose(p, 0.2, atol=1e-12)

    @given(st.integers(2, 6), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_best_expert_never_loses_probability_mass(self, n, seed):
        """The expert with strictly smallest loss must end with the
        largest probability after uniform exploration."""
        rng = np.random.default_rng(seed)
        losses = rng.uniform(0.5, 2.0, size=n)
        best = int(np.argmin(losses))
        losses[best] = 0.1
        comp = HedgeCompetition(n, gamma=1.5, loss_scale=1.0,
                                rng=np.random.default_rng(0))
        for _ in range(30):
            for m in range(n):
                comp.observe(m, float(losses[m]))
        p = comp.probabilities([True] * n)
        assert int(np.argmax(p)) == best


class TestRegret:
    def test_sublinear_regret_under_stationary_losses(self):
        """Empirical regret of Hedge's sampled plays vs the best fixed
        expert grows sublinearly (per-round regret shrinks)."""
        rng = np.random.default_rng(1)
        means = np.array([0.8, 0.3, 0.9])
        comp = HedgeCompetition(3, gamma=1.0, loss_scale=1.0,
                                rng=np.random.default_rng(2))
        awake = [True] * 3
        cumulative_play = 0.0
        per_round = []
        T = 400
        for t in range(1, T + 1):
            p = comp.probabilities(awake)
            m = int(comp.rng.choice(3, p=p))
            loss = float(means[m] + 0.05 * rng.normal())
            comp.observe(m, loss)
            cumulative_play += means[m]
            per_round.append(cumulative_play / t - means.min())
        early = np.mean(per_round[:50])
        late = np.mean(per_round[-50:])
        assert late < early  # average regret per round shrinks

    def test_auto_loss_scale_invariant_to_magnitude(self):
        """With loss_scale='auto', multiplying all losses by a constant
        must produce the same final distribution."""
        def run(scale):
            comp = HedgeCompetition(3, gamma=1.0, loss_scale="auto",
                                    rng=np.random.default_rng(0))
            losses = [1.0, 0.2, 0.8]
            for _ in range(50):
                for m in range(3):
                    comp.observe(m, losses[m] * scale)
            return comp.probabilities([True] * 3)

        np.testing.assert_allclose(run(1.0), run(1000.0), atol=1e-10)
