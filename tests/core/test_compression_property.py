"""Property tests for compression accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import models
from repro.core.compression import model_size_report
from repro.quantization import quantize_model, quantized_layers


def make_net():
    net = models.SmallConvNet(width=4, rng=np.random.default_rng(0))
    return quantize_model(net, "dorefa")


bit_choices = st.lists(
    st.sampled_from([None, 2, 3, 4, 6, 8]), min_size=4, max_size=4
)


class TestCompressionProperties:
    @given(bit_choices)
    @settings(max_examples=40, deadline=None)
    def test_ratio_matches_manual_computation(self, bits):
        net = make_net()
        layers = quantized_layers(net)
        for (_, layer), b in zip(layers, bits):
            layer.w_bits = b
        report = model_size_report(net)
        total_params = sum(l.weight.size for _, l in layers)
        used = sum(
            l.weight.size * (l.w_bits or 32) for _, l in layers
        )
        assert report.compression == pytest.approx(32 * total_params / used)

    @given(bit_choices)
    @settings(max_examples=40, deadline=None)
    def test_ratio_bounds(self, bits):
        net = make_net()
        for (_, layer), b in zip(quantized_layers(net), bits):
            layer.w_bits = b
        ratio = model_size_report(net).compression
        assert 1.0 <= ratio <= 16.0 + 1e-9  # floor is 2 bits -> at most 16x

    @given(bit_choices, bit_choices)
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_bits(self, bits_a, bits_b):
        """Pointwise-lower precision never decreases compression."""
        def ratio(bits):
            net = make_net()
            for (_, layer), b in zip(quantized_layers(net), bits):
                layer.w_bits = b
            return model_size_report(net).compression

        lower = [
            min(a or 32, b or 32) for a, b in zip(bits_a, bits_b)
        ]
        lower = [None if b == 32 else b for b in lower]
        assert ratio(lower) >= max(ratio(bits_a), ratio(bits_b)) - 1e-9
