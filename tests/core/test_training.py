"""Shared training/eval loop behaviour."""

import numpy as np
import pytest

from repro import models
from repro.core.training import accuracy_from_logits, evaluate, make_sgd, train_epoch
from repro.nn.data import ArrayDataset, DataLoader
from repro.quantization import quantize_model, set_uniform_bits


class TestAccuracy:
    def test_accuracy_from_logits(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        targets = np.array([0, 1, 1])
        assert accuracy_from_logits(logits, targets) == pytest.approx(2 / 3)


class TestEvaluate:
    def test_restores_training_mode(self, pretrained_net, tiny_loaders):
        net, _ = pretrained_net
        _, val = tiny_loaders
        net.train()
        evaluate(net, val)
        assert net.training

    def test_eval_on_eval_model_stays_eval(self, pretrained_net, tiny_loaders):
        net, _ = pretrained_net
        _, val = tiny_loaders
        net.eval()
        evaluate(net, val)
        assert not net.training

    def test_max_batches_limits_samples(self, pretrained_net, tiny_loaders):
        net, _ = pretrained_net
        _, val = tiny_loaders
        partial = evaluate(net, val, max_batches=1)
        full = evaluate(net, val)
        assert partial.n_samples < full.n_samples

    def test_accuracy_in_unit_interval(self, pretrained_net, tiny_loaders):
        net, _ = pretrained_net
        _, val = tiny_loaders
        result = evaluate(net, val)
        assert 0.0 <= result.accuracy <= 1.0
        assert result.loss > 0.0

    def test_deterministic(self, pretrained_net, tiny_loaders):
        net, _ = pretrained_net
        _, val = tiny_loaders
        a = evaluate(net, val)
        b = evaluate(net, val)
        assert a.accuracy == b.accuracy and a.loss == b.loss

    def test_empty_loader_raises(self, pretrained_net):
        net, _ = pretrained_net
        empty = DataLoader(
            ArrayDataset(np.zeros((0, 3, 12, 12)), np.zeros(0)), batch_size=4
        )
        with pytest.raises(RuntimeError):
            evaluate(net, empty)


class TestTrainEpoch:
    def test_loss_decreases_over_epochs(self, tiny_loaders):
        train, _ = tiny_loaders
        net = models.SmallConvNet(width=8, rng=np.random.default_rng(5))
        opt = make_sgd(net, lr=0.05)
        first = train_epoch(net, train, opt)
        for _ in range(3):
            last = train_epoch(net, train, opt)
        assert last < first

    def test_max_batches(self, tiny_loaders):
        train, _ = tiny_loaders
        net = models.SmallConvNet(width=4, rng=np.random.default_rng(5))
        opt = make_sgd(net, lr=0.01)
        loss = train_epoch(net, train, opt, max_batches=1)
        assert np.isfinite(loss)

    def test_pact_regularization_included(self, tiny_loaders):
        # PACT alpha must move during training (it only can via the reg +
        # clip gradients added in train_epoch).
        train, _ = tiny_loaders
        net = models.SmallConvNet(width=4, rng=np.random.default_rng(5))
        quantize_model(net, "pact")
        set_uniform_bits(net, 4, 4)
        from repro.quantization import quantized_layers

        alphas_before = [
            float(l.act_quantizer.alpha.data) for _, l in quantized_layers(net)
        ]
        opt = make_sgd(net, lr=0.05)
        train_epoch(net, train, opt)
        alphas_after = [
            float(l.act_quantizer.alpha.data) for _, l in quantized_layers(net)
        ]
        assert alphas_before != alphas_after


class TestMakeSGD:
    def test_includes_quantizer_params_once(self):
        net = models.SmallConvNet(width=4, rng=np.random.default_rng(0))
        quantize_model(net, "pact")
        opt = make_sgd(net, lr=0.01)
        ids = [id(p) for p in opt.params]
        assert len(ids) == len(set(ids))
        from repro.quantization import collect_quantizer_parameters

        for alpha in collect_quantizer_parameters(net):
            assert id(alpha) in ids

    def test_exclude_quantizer_params(self):
        net = models.SmallConvNet(width=4, rng=np.random.default_rng(0))
        quantize_model(net, "pact")
        opt = make_sgd(net, lr=0.01, include_quantizer_params=False)
        assert len(opt.params) == len(list(net.parameters()))
