"""Journal entries carry correlatable timestamps (PR 2, satellite c).

Every appended entry records both ``ts`` (wall clock) and ``mono``
(monotonic), so journal events can be lined up against telemetry events
post-hoc.  Journals written before these fields existed must remain
readable.
"""

import json
import time

from repro.core.runstate import RunJournal


class TestJournalTimestamps:
    def test_entries_carry_both_clocks(self, tmp_path):
        journal = RunJournal(tmp_path / "journal.jsonl")
        before_ts, before_mono = time.time(), time.perf_counter()
        entry = journal.append("run_start", seed=0)
        after_ts, after_mono = time.time(), time.perf_counter()

        assert before_ts <= entry["ts"] <= after_ts
        assert before_mono <= entry["mono"] <= after_mono
        # And the persisted line matches what was returned.
        (stored,) = journal.events()
        assert stored["ts"] == entry["ts"]
        assert stored["mono"] == entry["mono"]
        assert stored["seq"] == 0
        assert stored["seed"] == 0

    def test_mono_is_monotone_across_appends(self, tmp_path):
        journal = RunJournal(tmp_path / "journal.jsonl")
        monos = [journal.append("tick", i=i)["mono"] for i in range(5)]
        assert monos == sorted(monos)

    def test_timestamps_do_not_clobber_user_fields(self, tmp_path):
        journal = RunJournal(tmp_path / "journal.jsonl")
        entry = journal.append("custom", ts_label="mine", step=3)
        assert entry["ts_label"] == "mine"
        assert entry["step"] == 3
        assert isinstance(entry["ts"], float)

    def test_old_format_journals_stay_readable(self, tmp_path):
        """A journal written before ts/mono existed resumes cleanly."""
        path = tmp_path / "journal.jsonl"
        with open(path, "w", encoding="utf-8") as f:
            f.write(json.dumps({"seq": 0, "event": "run_start"}) + "\n")
            f.write(json.dumps(
                {"seq": 1, "event": "step_complete", "step": 0}
            ) + "\n")

        journal = RunJournal(path)
        events = journal.events()
        assert [e["event"] for e in events] == ["run_start", "step_complete"]
        assert all("ts" not in e for e in events)  # old lines untouched
        # New appends continue the sequence and add the new fields.
        entry = journal.append("step_complete", step=1)
        assert entry["seq"] == 2
        assert "ts" in entry and "mono" in entry
