"""CCQ driver: Algorithm 1 end-to-end semantics."""

import numpy as np
import pytest

from repro.core import (
    BitLadder,
    CCQConfig,
    CCQQuantizer,
    LambdaSchedule,
    RecoveryConfig,
)
from repro.quantization import get_bit_config, quantize_model, quantized_layers


def fast_config(**overrides):
    defaults = dict(
        ladder=BitLadder((8, 4, 2)),
        probes_per_step=3,
        probe_batches=1,
        recovery=RecoveryConfig(mode="manual", epochs=1, use_hybrid_lr=False),
        lr=0.02,
        initial_recovery_epochs=1,
        seed=0,
    )
    defaults.update(overrides)
    return CCQConfig(**defaults)


@pytest.fixture()
def quantized_pretrained(pretrained_net):
    net, baseline = pretrained_net
    quantize_model(net, "pact")
    return net, baseline


class TestConstruction:
    def test_rejects_unquantized_model_without_policy(
        self, pretrained_net, tiny_loaders
    ):
        net, _ = pretrained_net
        train, val = tiny_loaders
        with pytest.raises(ValueError, match="no quantized layers"):
            CCQQuantizer(net, train, val, config=fast_config())

    def test_policy_argument_converts(self, pretrained_net, tiny_loaders):
        net, _ = pretrained_net
        train, val = tiny_loaders
        ccq = CCQQuantizer(net, train, val, config=fast_config(), policy="pact")
        assert len(ccq.layers) == 4

    def test_unknown_target_layer_rejected(
        self, quantized_pretrained, tiny_loaders
    ):
        net, _ = quantized_pretrained
        train, val = tiny_loaders
        with pytest.raises(KeyError):
            CCQQuantizer(
                net, train, val, config=fast_config(),
                target_config={"bogus": 2},
            )


class TestRun:
    def test_all_layers_reach_floor(self, quantized_pretrained, tiny_loaders):
        net, _ = quantized_pretrained
        train, val = tiny_loaders
        ccq = CCQQuantizer(net, train, val, config=fast_config())
        result = ccq.run()
        for name, (w_bits, a_bits) in result.bit_config.items():
            assert w_bits == 2, name
        # 4 layers x 2 level drops each
        assert len(result.records) == 8

    def test_each_step_drops_exactly_one_level(
        self, quantized_pretrained, tiny_loaders
    ):
        net, _ = quantized_pretrained
        train, val = tiny_loaders
        ccq = CCQQuantizer(net, train, val, config=fast_config())
        result = ccq.run()
        ladder = BitLadder((8, 4, 2))
        for rec in result.records:
            assert ladder.next_level(rec.from_bits) == rec.to_bits

    def test_max_steps_budget(self, quantized_pretrained, tiny_loaders):
        net, _ = quantized_pretrained
        train, val = tiny_loaders
        ccq = CCQQuantizer(net, train, val, config=fast_config(max_steps=3))
        result = ccq.run()
        assert len(result.records) == 3

    def test_target_compression_stops_early(
        self, quantized_pretrained, tiny_loaders
    ):
        net, _ = quantized_pretrained
        train, val = tiny_loaders
        ccq = CCQQuantizer(
            net, train, val, config=fast_config(target_compression=5.0)
        )
        result = ccq.run()
        assert result.compression >= 5.0
        # Stopped before quantizing everything to the floor.
        assert len(result.records) < 8

    def test_probe_restores_bits(self, quantized_pretrained, tiny_loaders):
        net, _ = quantized_pretrained
        train, val = tiny_loaders
        ccq = CCQQuantizer(net, train, val, config=fast_config())
        ccq.initialize()
        before = get_bit_config(net)
        ccq._probe_loss(0)
        assert get_bit_config(net) == before

    def test_probe_counter(self, quantized_pretrained, tiny_loaders):
        net, _ = quantized_pretrained
        train, val = tiny_loaders
        ccq = CCQQuantizer(
            net, train, val, config=fast_config(max_steps=2, probes_per_step=3)
        )
        result = ccq.run()
        # Every probe round is either a forward pass or an exact
        # cache hit; with memoization on (the default) repeated draws
        # within a step are served from the cache.
        assert result.probe_rounds == 2 * 3
        assert result.probe_forward_passes <= 2 * 3
        assert (
            result.probe_forward_passes + result.probe_cache_hits
            == result.probe_rounds
        )

    def test_probe_counter_without_cache(
        self, quantized_pretrained, tiny_loaders
    ):
        net, _ = quantized_pretrained
        train, val = tiny_loaders
        ccq = CCQQuantizer(
            net, train, val,
            config=fast_config(
                max_steps=2, probes_per_step=3, probe_cache=False
            ),
        )
        result = ccq.run()
        assert result.probe_forward_passes == 2 * 3
        assert result.probe_cache_hits == 0

    def test_trace_has_valleys_and_recoveries(
        self, quantized_pretrained, tiny_loaders
    ):
        net, _ = quantized_pretrained
        train, val = tiny_loaders
        config = fast_config(
            recovery=RecoveryConfig(mode="manual", epochs=2,
                                    use_hybrid_lr=False),
            max_steps=3,
        )
        ccq = CCQQuantizer(net, train, val, config=config)
        result = ccq.run()
        trace = result.accuracy_trace
        events = [e for _, _, e in trace]
        assert events[0] == "initial"
        assert any(e.startswith("quantize:") for e in events)
        assert events.count("recover") == 3 * 2

    def test_compression_monotone_over_steps(
        self, quantized_pretrained, tiny_loaders
    ):
        net, _ = quantized_pretrained
        train, val = tiny_loaders
        ccq = CCQQuantizer(net, train, val, config=fast_config())
        result = ccq.run()
        ratios = [rec.compression for rec in result.records]
        assert all(a <= b + 1e-9 for a, b in zip(ratios, ratios[1:]))


class TestTargetConfig:
    def test_fp_pinned_layers_never_quantized(
        self, quantized_pretrained, tiny_loaders
    ):
        net, _ = quantized_pretrained
        train, val = tiny_loaders
        layer_names = [n for n, _ in quantized_layers(net)]
        target = {layer_names[0]: None, layer_names[-1]: None}
        for middle in layer_names[1:-1]:
            target[middle] = 4
        ccq = CCQQuantizer(
            net, train, val, config=fast_config(), target_config=target
        )
        result = ccq.run()
        assert result.bit_config[layer_names[0]][0] is None
        assert result.bit_config[layer_names[-1]][0] is None
        for middle in layer_names[1:-1]:
            assert result.bit_config[middle][0] == 4

    def test_reaches_exact_forced_configuration(
        self, quantized_pretrained, tiny_loaders
    ):
        net, _ = quantized_pretrained
        train, val = tiny_loaders
        layer_names = [n for n, _ in quantized_layers(net)]
        target = {name: 2 for name in layer_names}
        target[layer_names[1]] = 4
        ccq = CCQQuantizer(
            net, train, val, config=fast_config(), target_config=target
        )
        result = ccq.run()
        for name, (w_bits, _) in result.bit_config.items():
            assert w_bits == target[name]

    def test_weights_only_mode(self, quantized_pretrained, tiny_loaders):
        net, _ = quantized_pretrained
        train, val = tiny_loaders
        ccq = CCQQuantizer(
            net, train, val,
            config=fast_config(quantize_activations=False, max_steps=2),
        )
        result = ccq.run()
        for name, (w_bits, a_bits) in result.bit_config.items():
            assert a_bits is None
