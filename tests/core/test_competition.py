"""Exponential-weights competition: Hedge updates, sleeping experts, Eq. 7."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.competition import HedgeCompetition, LambdaSchedule


class TestLambdaSchedule:
    def test_linear_decay_endpoints(self):
        sched = LambdaSchedule(start=0.8, end=0.2, decay_steps=10)
        assert sched.value(0) == pytest.approx(0.8)
        assert sched.value(10) == pytest.approx(0.2)
        assert sched.value(5) == pytest.approx(0.5)

    def test_clamped_after_decay(self):
        sched = LambdaSchedule(start=0.8, end=0.2, decay_steps=10)
        assert sched.value(100) == pytest.approx(0.2)

    def test_constant(self):
        sched = LambdaSchedule.constant(0.6)
        assert sched.value(0) == sched.value(50) == pytest.approx(0.6)

    def test_average(self):
        assert LambdaSchedule(0.8, 0.2, 10).average == pytest.approx(0.5)

    def test_validates_range(self):
        with pytest.raises(ValueError):
            LambdaSchedule(start=1.5)


class TestProbabilities:
    def test_starts_uniform(self):
        comp = HedgeCompetition(4)
        p = comp.probabilities([True] * 4)
        np.testing.assert_allclose(p, 0.25)

    def test_sleeping_experts_get_zero(self):
        comp = HedgeCompetition(4)
        p = comp.probabilities([True, False, True, False])
        assert p[1] == p[3] == 0.0
        np.testing.assert_allclose(p.sum(), 1.0)

    def test_all_asleep_raises(self):
        comp = HedgeCompetition(3)
        with pytest.raises(RuntimeError):
            comp.probabilities([False] * 3)

    def test_wrong_mask_shape_raises(self):
        comp = HedgeCompetition(3)
        with pytest.raises(ValueError):
            comp.probabilities([True, True])

    @given(st.lists(st.floats(0.01, 10.0), min_size=2, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_distribution_is_simplex(self, losses):
        comp = HedgeCompetition(len(losses), gamma=0.5)
        for i, loss in enumerate(losses):
            comp.observe(i, loss)
        p = comp.probabilities([True] * len(losses))
        assert (p >= 0).all()
        assert p.sum() == pytest.approx(1.0)

    def test_low_loss_layer_gains_probability(self):
        comp = HedgeCompetition(3, gamma=2.0)
        for _ in range(5):
            comp.observe(0, 0.1)   # cheap to quantize
            comp.observe(1, 2.0)   # expensive
            comp.observe(2, 2.0)
        p = comp.probabilities([True] * 3)
        assert p[0] > p[1] and p[0] > p[2]

    def test_weights_do_not_underflow(self):
        comp = HedgeCompetition(2, gamma=5.0, loss_scale=1.0)
        for _ in range(500):
            comp.observe(0, 10.0)
            comp.observe(1, 10.0)
        p = comp.probabilities([True, True])
        assert np.isfinite(p).all()
        np.testing.assert_allclose(p, 0.5)


class TestMixing:
    def test_lambda_one_is_pure_size_distribution(self):
        comp = HedgeCompetition(
            3, lambda_schedule=LambdaSchedule.constant(1.0)
        )
        sizes = [100.0, 300.0, 600.0]
        p = comp.mixed_probabilities([True] * 3, sizes, step=0)
        np.testing.assert_allclose(p, [0.1, 0.3, 0.6])

    def test_lambda_zero_is_pure_learned(self):
        comp = HedgeCompetition(
            3, lambda_schedule=LambdaSchedule.constant(0.0)
        )
        comp.observe(0, 0.01)
        learned = comp.probabilities([True] * 3)
        mixed = comp.mixed_probabilities([True] * 3, [1.0, 2.0, 3.0], step=0)
        np.testing.assert_allclose(mixed, learned)

    def test_no_schedule_means_no_mixing(self):
        comp = HedgeCompetition(2)
        p = comp.mixed_probabilities([True, True], [1.0, 99.0], step=0)
        np.testing.assert_allclose(p, 0.5)

    def test_sleeping_layers_excluded_from_size_term(self):
        comp = HedgeCompetition(
            3, lambda_schedule=LambdaSchedule.constant(1.0)
        )
        p = comp.mixed_probabilities([True, False, True], [100.0, 1e9, 100.0],
                                     step=0)
        assert p[1] == 0.0
        np.testing.assert_allclose(p, [0.5, 0.0, 0.5])

    def test_mixed_is_simplex(self):
        comp = HedgeCompetition(
            4, lambda_schedule=LambdaSchedule(0.8, 0.2, 5)
        )
        comp.observe(2, 0.01)
        p = comp.mixed_probabilities([True] * 4, [1, 2, 3, 4], step=2)
        assert p.sum() == pytest.approx(1.0)
        assert (p >= 0).all()


class TestRunStep:
    def test_winner_is_awake(self):
        comp = HedgeCompetition(4, probes_per_step=3,
                                rng=np.random.default_rng(0))
        awake = [True, False, True, False]
        result = comp.run_step(lambda m: 1.0, awake)
        assert awake[result.winner]

    def test_probes_only_awake_layers(self):
        comp = HedgeCompetition(3, probes_per_step=10,
                                rng=np.random.default_rng(0))
        probed = []
        comp.run_step(lambda m: probed.append(m) or 1.0,
                      [True, True, False])
        assert 2 not in probed
        assert len(probed) == 10

    def test_biased_losses_bias_the_winner(self):
        rng = np.random.default_rng(0)
        wins = []
        for seed in range(30):
            comp = HedgeCompetition(
                3, gamma=3.0, probes_per_step=12,
                rng=np.random.default_rng(seed),
            )
            result = comp.run_step(
                lambda m: 0.1 if m == 1 else 3.0, [True] * 3
            )
            wins.append(result.winner)
        assert wins.count(1) > 15  # layer 1 should win most competitions

    def test_result_records_probe_losses(self):
        comp = HedgeCompetition(2, probes_per_step=4,
                                rng=np.random.default_rng(0))
        result = comp.run_step(lambda m: float(m) + 0.5, [True, True])
        for layer, loss in result.probe_losses.items():
            assert loss == pytest.approx(layer + 0.5)

    def test_lambda_recorded(self):
        comp = HedgeCompetition(
            2, probes_per_step=1,
            lambda_schedule=LambdaSchedule(0.8, 0.2, 10),
            rng=np.random.default_rng(0),
        )
        result = comp.run_step(lambda m: 1.0, [True, True],
                               layer_sizes=[1.0, 1.0], step=5)
        assert result.lambda_used == pytest.approx(0.5)


class TestOutlierLosses:
    """Divergence penalties must demote the expert without polluting
    the auto loss scale (regression: one 1e3 penalty used to flatten
    every subsequent honest loss to ~0 after scaling)."""

    def test_outlier_excluded_from_loss_history(self):
        comp = HedgeCompetition(3, outlier_threshold=1e3)
        comp.observe(0, 0.5)
        comp.observe(1, 1e3)       # divergence penalty
        comp.observe(2, 0.7)
        assert comp._loss_history == [0.5, 0.7]

    def test_outlier_still_demotes_the_expert(self):
        comp = HedgeCompetition(2, outlier_threshold=1e3)
        comp.observe(0, 0.5)
        before = comp.probabilities([True, True]).copy()
        comp.observe(1, 1e3)
        after = comp.probabilities([True, True])
        assert after[1] < before[1]
        assert after[1] < after[0]

    def test_honest_losses_keep_their_scale_after_penalty(self):
        polluted = HedgeCompetition(2, outlier_threshold=None)
        clean = HedgeCompetition(2, outlier_threshold=1e3)
        for comp in (polluted, clean):
            comp.observe(0, 0.5)
            comp.observe(1, 1e3)
        # With the threshold, a later honest loss is scaled against the
        # honest history mean (~0.5), not the penalty-inflated one.
        assert clean._scaled(0.5) == pytest.approx(1.0, rel=0.1)
        assert polluted._scaled(0.5) < 0.01

    def test_outlier_before_any_honest_loss_counts_as_one_unit(self):
        comp = HedgeCompetition(2, outlier_threshold=1e3)
        # Matches the pre-threshold self-normalizing first observation.
        assert comp._scaled(1e3) == pytest.approx(1.0)
        assert comp._loss_history == []

    def test_no_threshold_keeps_legacy_behavior(self):
        comp = HedgeCompetition(2)
        comp.observe(0, 1e3)
        assert comp._loss_history == [1e3]

    def test_state_roundtrip_preserves_filtered_history(self):
        comp = HedgeCompetition(2, outlier_threshold=1e3)
        comp.observe(0, 0.5)
        comp.observe(1, 1e3)
        restored = HedgeCompetition(2, outlier_threshold=1e3)
        restored.load_state_dict(comp.state_dict())
        assert restored._loss_history == [0.5]
        np.testing.assert_array_equal(restored.weights, comp.weights)


class TestValidation:
    def test_rejects_bad_constructor_args(self):
        with pytest.raises(ValueError):
            HedgeCompetition(0)
        with pytest.raises(ValueError):
            HedgeCompetition(2, gamma=0.0)
        with pytest.raises(ValueError):
            HedgeCompetition(2, probes_per_step=0)
