"""Block-granularity CCQ: grouped experts."""

import numpy as np
import pytest

from repro.core import BitLadder, CCQConfig, CCQQuantizer, RecoveryConfig
from repro.quantization import quantize_model, quantized_layers


def fast_config(**overrides):
    defaults = dict(
        ladder=BitLadder((8, 4)),
        probes_per_step=2,
        probe_batches=1,
        recovery=RecoveryConfig(mode="manual", epochs=0, use_hybrid_lr=False),
        lr=0.02,
        initial_recovery_epochs=0,
        seed=0,
    )
    defaults.update(overrides)
    return CCQConfig(**defaults)


@pytest.fixture()
def quantized_pretrained(pretrained_net):
    net, baseline = pretrained_net
    quantize_model(net, "pact")
    return net, baseline


class TestGroupValidation:
    def test_unknown_member_rejected(self, quantized_pretrained, tiny_loaders):
        net, _ = quantized_pretrained
        train, val = tiny_loaders
        with pytest.raises(KeyError, match="unknown layer"):
            CCQQuantizer(net, train, val, config=fast_config(),
                         groups={"block": ["missing"]})

    def test_duplicate_member_rejected(self, quantized_pretrained,
                                       tiny_loaders):
        net, _ = quantized_pretrained
        train, val = tiny_loaders
        with pytest.raises(ValueError, match="appears in groups"):
            CCQQuantizer(
                net, train, val, config=fast_config(),
                groups={"a": ["conv1"], "b": ["conv1"]},
            )

    def test_empty_group_rejected(self, quantized_pretrained, tiny_loaders):
        net, _ = quantized_pretrained
        train, val = tiny_loaders
        with pytest.raises(ValueError, match="empty"):
            CCQQuantizer(net, train, val, config=fast_config(),
                         groups={"a": []})

    def test_mixed_targets_rejected(self, quantized_pretrained, tiny_loaders):
        net, _ = quantized_pretrained
        train, val = tiny_loaders
        with pytest.raises(ValueError, match="mixes target"):
            CCQQuantizer(
                net, train, val, config=fast_config(),
                target_config={"conv1": 4, "conv2": 8},
                groups={"stem": ["conv1", "conv2"]},
            )


class TestGroupedRun:
    def test_expert_count(self, quantized_pretrained, tiny_loaders):
        net, _ = quantized_pretrained
        train, val = tiny_loaders
        ccq = CCQQuantizer(
            net, train, val, config=fast_config(),
            groups={"stem": ["conv1", "conv2"]},
        )
        # stem group + conv3 + fc singletons = 3 experts for 4 layers
        assert len(ccq.experts) == 3
        names = [n for n, _ in ccq.experts]
        assert "stem" in names and "conv3" in names and "fc" in names

    def test_group_members_move_together(self, quantized_pretrained,
                                         tiny_loaders):
        net, _ = quantized_pretrained
        train, val = tiny_loaders
        ccq = CCQQuantizer(
            net, train, val, config=fast_config(),
            groups={"stem": ["conv1", "conv2"]},
        )
        result = ccq.run()
        layers = dict(quantized_layers(net))
        assert layers["conv1"].w_bits == layers["conv2"].w_bits == 4
        # One record per expert level-drop: 3 experts x 1 drop
        assert len(result.records) == 3

    def test_group_size_is_summed(self, quantized_pretrained, tiny_loaders):
        net, _ = quantized_pretrained
        train, val = tiny_loaders
        ccq = CCQQuantizer(
            net, train, val, config=fast_config(),
            groups={"stem": ["conv1", "conv2"]},
        )
        ccq.initialize()
        sizes = ccq._layer_sizes()
        layers = dict(quantized_layers(net))
        stem_index = [n for n, _ in ccq.experts].index("stem")
        expected = 8 * (
            layers["conv1"].weight.size + layers["conv2"].weight.size
        )
        assert sizes[stem_index] == pytest.approx(expected)

    def test_probe_restores_group(self, quantized_pretrained, tiny_loaders):
        net, _ = quantized_pretrained
        train, val = tiny_loaders
        ccq = CCQQuantizer(
            net, train, val, config=fast_config(),
            groups={"stem": ["conv1", "conv2"]},
        )
        ccq.initialize()
        from repro.quantization import get_bit_config

        before = get_bit_config(net)
        stem_index = [n for n, _ in ccq.experts].index("stem")
        ccq._probe_loss(stem_index)
        assert get_bit_config(net) == before

    def test_records_use_expert_names(self, quantized_pretrained,
                                      tiny_loaders):
        net, _ = quantized_pretrained
        train, val = tiny_loaders
        ccq = CCQQuantizer(
            net, train, val, config=fast_config(),
            groups={"stem": ["conv1", "conv2"]},
        )
        result = ccq.run()
        names = {r.layer_name for r in result.records}
        assert names == {"stem", "conv3", "fc"}
