"""Experiment scaffolding (task builders, scales) and the CLI surface."""

import numpy as np
import pytest

from repro.experiments import SCALES, TASK_NAMES, build_task


class TestScales:
    def test_all_scales_defined(self):
        assert set(SCALES) == {"micro", "smoke", "bench", "paper"}

    def test_scales_ordered_by_size(self):
        assert SCALES["micro"].n_train < SCALES["smoke"].n_train
        assert SCALES["smoke"].n_train < SCALES["bench"].n_train
        assert SCALES["bench"].n_train < SCALES["paper"].n_train


class TestBuildTask:
    @pytest.mark.parametrize("name", TASK_NAMES)
    def test_builds_and_forwards(self, name):
        task = build_task(name, scale="smoke")
        model = task.make_model()
        from repro.nn.tensor import Tensor

        out = model(Tensor(np.zeros((1, *task.input_shape))))
        assert out.shape[0] == 1

    def test_unknown_task_raises(self):
        with pytest.raises(KeyError):
            build_task("alexnet_mnist")

    def test_loaders_cover_splits(self):
        task = build_task("resnet20_cifar10", scale="smoke")
        train, val = task.loaders()
        n_train = sum(len(labels) for _, labels in train)
        assert n_train == SCALES["smoke"].n_train

    def test_imagenet_task_classes(self):
        task = build_task("resnet18_imagenet", scale="smoke")
        assert task.splits.n_classes == SCALES["smoke"].imagenet_classes

    def test_scale_object_accepted(self):
        task = build_task("resnet20_cifar10", scale=SCALES["smoke"])
        assert task.scale.name == "smoke"


class TestCLI:
    def test_policies_command(self, capsys):
        from repro.cli import main

        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "pact" in out and "dorefa" in out

    def test_power_command(self, capsys):
        from repro.cli import main

        assert main(["power", "--synth"]) == 0
        out = capsys.readouterr().out
        assert "fp32" in out and "int2" in out

    def test_parser_rejects_unknown_task(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["run-ccq", "--task", "nope"])
