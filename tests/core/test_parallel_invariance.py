"""Parallel probe fan-out: the worker count must be invisible.

Acceptance for the parallel backend: with ``probe_workers=N`` the CCQ
trajectory — winners, bit configuration, per-round probe losses, per-step
accuracies, journal contents — is bit-for-bit identical to the serial
run for *any* worker count, including 1.  Speculative worker
evaluations only ever show up in ``probe_forward_passes``.  A pool that
cannot start (or dies mid-run) silently degrades to the serial path
with the same guarantee.
"""

import numpy as np
import pytest

from repro import models
from repro.core import CCQQuantizer
from repro.nn.data import DataLoader
from repro.parallel import PoolError
from repro.quantization import quantize_model

from .fault_injection import FaultyLoader, SimulatedKill
from .test_probe_determinism import make_config, trajectory


@pytest.fixture()
def run_factory(pretrained_state, tiny_splits):
    state, _ = pretrained_state

    def build():
        net = models.SmallConvNet(width=8, rng=np.random.default_rng(0))
        net.load_state_dict(state)
        quantize_model(net, "pact")
        train = DataLoader(tiny_splits.train, batch_size=64, shuffle=True,
                           seed=0)
        val = DataLoader(tiny_splits.val, batch_size=100, shuffle=True,
                         seed=7)
        return net, train, val

    return build


def probe_trace(result):
    """Per-step probe sequence and per-round losses, in draw order."""
    return [
        (
            r.competition.probes,
            [r.competition.probe_losses[m] for m in r.competition.probes],
        )
        for r in result.records
    ]


def journal_payload(journal):
    """Journal contents with the wall-clock stamps stripped."""
    return [
        {k: v for k, v in event.items() if k not in ("ts", "mono")}
        for event in journal.events()
    ]


class TestWorkerCountInvariance:
    def test_trajectory_identical_across_worker_counts(self, run_factory):
        results = {}
        for workers in (0, 1, 2, 4):
            net, train, val = run_factory()
            quantizer = CCQQuantizer(
                net, train, val,
                config=make_config(max_steps=4, probe_workers=workers),
            )
            results[workers] = quantizer.run()
            # The parallel runs really used the pool (no silent
            # serial fallback would make this test vacuous).
            if workers > 0:
                assert not quantizer._pool_failed

        serial = results[0]
        for workers in (1, 2, 4):
            parallel = results[workers]
            assert trajectory(parallel) == trajectory(serial)
            # Stronger than winners: every probe round observed the
            # bit-identical loss, in the identical draw order.
            assert probe_trace(parallel) == probe_trace(serial)
            assert parallel.probe_rounds == serial.probe_rounds
            assert parallel.probe_cache_hits == serial.probe_cache_hits
            # Speculation can only add forward passes, never remove.
            assert (
                parallel.probe_forward_passes
                >= serial.probe_forward_passes
            )

    def test_journal_identical_serial_vs_parallel(self, run_factory,
                                                  tmp_path):
        journals = {}
        for workers in (0, 2):
            net, train, val = run_factory()
            quantizer = CCQQuantizer(
                net, train, val,
                config=make_config(
                    tmp_path / f"ckpt{workers}",
                    max_steps=3, probe_workers=workers,
                ),
            )
            quantizer.run()
            journals[workers] = journal_payload(quantizer.store.journal)
        assert journals[2] == journals[0]


class TestKillAndResumeWithPool:
    def test_resumed_parallel_run_matches_parallel_reference(
        self, run_factory, tmp_path
    ):
        ckpt = tmp_path / "ckpt"

        net, train, val = run_factory()
        reference = CCQQuantizer(
            net, train, val, config=make_config(probe_workers=2)
        ).run()

        net, train, val = run_factory()
        killed_train = FaultyLoader(train, fail_at_batch=25, mode="kill")
        interrupted = CCQQuantizer(
            net, killed_train, val,
            config=make_config(ckpt, probe_workers=2),
        )
        with pytest.raises(SimulatedKill):
            interrupted.run()
        interrupted._close_pool()
        assert interrupted.store.journal.events("step_complete")

        net, train, val = run_factory()
        resumed = CCQQuantizer(
            net, train, val, config=make_config(ckpt, probe_workers=2)
        )
        result = resumed.run(resume=True)

        assert trajectory(result) == trajectory(reference)
        assert result.probe_rounds == reference.probe_rounds


class TestSerialFallback:
    def test_pool_start_failure_falls_back_to_serial(
        self, run_factory, monkeypatch
    ):
        def refuse(*args, **kwargs):
            raise PoolError("no processes in this sandbox")

        import repro.parallel

        monkeypatch.setattr(repro.parallel, "create_probe_pool", refuse)

        net, train, val = run_factory()
        serial = CCQQuantizer(
            net, train, val, config=make_config(max_steps=3)
        ).run()

        net, train, val = run_factory()
        quantizer = CCQQuantizer(
            net, train, val,
            config=make_config(max_steps=3, probe_workers=2),
        )
        fallback = quantizer.run()

        assert quantizer._pool_failed
        assert trajectory(fallback) == trajectory(serial)
        # Fully serial: not a single speculative evaluation happened.
        assert (
            fallback.probe_forward_passes == serial.probe_forward_passes
        )

    def test_mid_run_pool_failure_falls_back_to_serial(
        self, run_factory, monkeypatch
    ):
        class DyingPool:
            n_workers = 2

            def __init__(self):
                self.closed = False

            def broadcast(self, *args, **kwargs):
                raise PoolError("worker died")

            def close(self):
                self.closed = True

        pools = []

        def make_pool(*args, **kwargs):
            pool = DyingPool()
            pools.append(pool)
            return pool

        import repro.parallel

        monkeypatch.setattr(repro.parallel, "create_probe_pool", make_pool)

        net, train, val = run_factory()
        serial = CCQQuantizer(
            net, train, val, config=make_config(max_steps=3)
        ).run()

        net, train, val = run_factory()
        quantizer = CCQQuantizer(
            net, train, val,
            config=make_config(max_steps=3, probe_workers=2),
        )
        result = quantizer.run()

        assert quantizer._pool_failed
        assert [pool.closed for pool in pools] == [True]
        assert trajectory(result) == trajectory(serial)


class TestWorkerTelemetry:
    def test_trajectory_unchanged_with_worker_telemetry_enabled(
        self, run_factory, tmp_path
    ):
        """Telemetry capture inside the workers (per-worker event files,
        span/trace propagation through the command queue) must be as
        bit-invisible to the trajectory as the pool itself."""
        from repro.telemetry import Telemetry

        net, train, val = run_factory()
        serial = CCQQuantizer(
            net, train, val, config=make_config(max_steps=3)
        ).run()

        telemetry = Telemetry.create(
            directory=tmp_path / "telem", log_level="error"
        )
        net, train, val = run_factory()
        quantizer = CCQQuantizer(
            net, train, val,
            config=make_config(max_steps=3, probe_workers=2),
            telemetry=telemetry,
        )
        instrumented = quantizer.run()
        telemetry.close()
        assert not quantizer._pool_failed

        assert trajectory(instrumented) == trajectory(serial)
        assert probe_trace(instrumented) == probe_trace(serial)

    def test_two_worker_run_emits_mergeable_worker_telemetry(
        self, run_factory, tmp_path
    ):
        from repro.telemetry import (
            Telemetry,
            assemble_traces,
            load_aggregated_run,
            merge_worker_metrics,
            pool_summary,
            worker_lanes,
        )

        directory = tmp_path / "telem"
        telemetry = Telemetry.create(
            directory=directory, log_level="error"
        )
        net, train, val = run_factory()
        CCQQuantizer(
            net, train, val,
            config=make_config(max_steps=3, probe_workers=2),
            telemetry=telemetry,
        ).run()
        telemetry.close()

        agg = load_aggregated_run(directory)
        assert agg.n_workers == 2

        lanes = worker_lanes(agg)
        assert set(lanes) == {0, 1}
        assert all(lane.evals > 0 for lane in lanes.values())
        assert all(lane.busy_s > 0.0 for lane in lanes.values())

        summary = pool_summary(agg)
        assert summary["fanout_rounds"] == 3
        assert 0.0 < summary["utilization"] <= 1.0

        # Every worker eval stitches to a parent fan-out span.
        traces = assemble_traces(agg)
        assert len(traces) == 3
        children = [c for t in traces for c in t["children"]]
        assert children
        joined = sum(len(t["children"]) for t in traces)
        total_evals = sum(lane.evals for lane in lanes.values())
        assert joined == total_evals

        merged = merge_worker_metrics(directory)
        names = {name for name, _, _, _ in merged.series()}
        assert "worker.evals" in names
        assert "worker.eval_s" in names


class TestConfigSurface:
    def test_negative_probe_workers_rejected(self, run_factory):
        net, train, val = run_factory()
        with pytest.raises(ValueError):
            CCQQuantizer(
                net, train, val, config=make_config(probe_workers=-1)
            )

    def test_parallel_knobs_absent_from_fingerprint(self, run_factory,
                                                    tmp_path):
        """probe_workers / qweight_cache / the supervision knobs are
        trajectory-invariant, so flipping them must not invalidate a
        checkpoint."""
        ckpt = tmp_path / "ckpt"
        net, train, val = run_factory()
        CCQQuantizer(
            net, train, val, config=make_config(ckpt, max_steps=2)
        ).run()

        net, train, val = run_factory()
        flipped = CCQQuantizer(
            net, train, val,
            config=make_config(ckpt, probe_workers=2,
                               qweight_cache=False,
                               probe_timeout=42.0,
                               pool_respawn_budget=3,
                               pool_repromote_after=9),
        )
        result = flipped.run(resume=True)
        assert [r.step for r in result.records] == list(range(8))
