"""Fault-injection wrappers for proving the CCQ recovery paths.

Not a test module — a harness imported by the resilience and resume
tests.  The wrappers make a data loader or a module misbehave at a
precisely chosen point:

* :class:`FaultyLoader` — wraps a ``DataLoader``; at a chosen global
  batch index it can **raise** an :class:`InjectedFault`, **kill** the
  process model with a :class:`SimulatedKill` (standing in for
  SIGKILL / power loss — the driver must *not* catch it), emit a **nan**
  batch (poisoned images), or **stall** for a configurable delay before
  continuing.  Every other batch is passed through untouched, and the
  wrapped loader's RNG is consumed identically to an unwrapped run, so a
  fault-free prefix of the trajectory is bit-identical to the reference.
* :class:`FaultyModule` — wraps a ``Module`` and corrupts (or raises
  from) its forward pass at a chosen call index.

All wrappers delegate unknown attributes to the wrapped object, so code
that pokes at ``loader._rng`` or ``module.training`` keeps working.
"""

from __future__ import annotations

import time
from typing import Iterator, Optional

import numpy as np

from repro.nn.modules import Module

__all__ = [
    "InjectedFault",
    "SimulatedKill",
    "FaultyLoader",
    "FaultyModule",
]


class InjectedFault(RuntimeError):
    """A deliberately injected failure (recoverable-error model)."""


class SimulatedKill(BaseException):
    """Stands in for SIGKILL / power loss.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so no
    ``except Exception`` recovery path in the code under test can absorb
    it — exactly like a real kill, the run must die and be *resumed*.
    """


class FaultyLoader:
    """Wrap a data loader and inject one fault at a global batch index.

    Parameters
    ----------
    loader:
        The loader to wrap.
    fail_at_batch:
        Zero-based global batch counter (across epochs) at which the
        fault fires.
    mode:
        ``"raise"`` (InjectedFault), ``"kill"`` (SimulatedKill),
        ``"nan"`` (poison the images with NaN) or ``"stall"`` (sleep
        ``stall_seconds`` then continue).
    once:
        If True (default) the fault fires exactly once; otherwise it
        fires on every batch from ``fail_at_batch`` onwards.
    stall_seconds:
        Sleep duration for ``mode="stall"``.
    """

    def __init__(
        self,
        loader,
        fail_at_batch: int,
        mode: str = "nan",
        once: bool = True,
        stall_seconds: float = 0.01,
    ) -> None:
        if mode not in ("raise", "kill", "nan", "stall"):
            raise ValueError(f"unknown fault mode {mode!r}")
        self.loader = loader
        self.fail_at_batch = fail_at_batch
        self.mode = mode
        self.once = once
        self.stall_seconds = stall_seconds
        self.batches_served = 0
        self.faults_fired = 0

    def __getattr__(self, name):
        return getattr(self.loader, name)

    def __len__(self) -> int:
        return len(self.loader)

    def _should_fire(self) -> bool:
        if self.once:
            return (
                self.batches_served == self.fail_at_batch
                and self.faults_fired == 0
            )
        return self.batches_served >= self.fail_at_batch

    def __iter__(self) -> Iterator:
        for images, targets in self.loader:
            if self._should_fire():
                self.faults_fired += 1
                if self.mode == "raise":
                    raise InjectedFault(
                        f"injected loader fault at batch "
                        f"{self.batches_served}"
                    )
                if self.mode == "kill":
                    raise SimulatedKill(
                        f"simulated kill at batch {self.batches_served}"
                    )
                if self.mode == "stall":
                    time.sleep(self.stall_seconds)
                elif self.mode == "nan":
                    images = np.full_like(images, np.nan)
            self.batches_served += 1
            yield images, targets


class FaultyModule(Module):
    """Wrap a module and corrupt its forward pass at a chosen call.

    ``mode="nan"`` replaces the output data with NaN; ``mode="raise"``
    raises :class:`InjectedFault`; ``mode="kill"`` raises
    :class:`SimulatedKill`.
    """

    def __init__(
        self,
        inner: Module,
        fail_at_call: int,
        mode: str = "nan",
        once: bool = True,
    ) -> None:
        super().__init__()
        if mode not in ("raise", "kill", "nan"):
            raise ValueError(f"unknown fault mode {mode!r}")
        self.inner = inner  # registered as a child: train/eval propagate
        self.fail_at_call = fail_at_call
        self.mode = mode
        self.once = once
        self.calls = 0
        self.faults_fired = 0

    def _should_fire(self) -> bool:
        if self.once:
            return self.calls == self.fail_at_call and self.faults_fired == 0
        return self.calls >= self.fail_at_call

    def forward(self, x):
        fire = self._should_fire()
        self.calls += 1
        if fire:
            self.faults_fired += 1
            if self.mode == "raise":
                raise InjectedFault(
                    f"injected module fault at call {self.calls - 1}"
                )
            if self.mode == "kill":
                raise SimulatedKill(
                    f"simulated kill at call {self.calls - 1}"
                )
        out = self.inner(x)
        if fire and self.mode == "nan":
            out.data = np.full_like(out.data, np.nan)
        return out
