"""Fault-injection wrappers for proving the CCQ recovery paths.

Not a test module — a harness imported by the resilience and resume
tests.  The wrappers make a data loader or a module misbehave at a
precisely chosen point:

* :class:`FaultyLoader` — wraps a ``DataLoader``; at a chosen global
  batch index it can **raise** an :class:`InjectedFault`, **kill** the
  process model with a :class:`SimulatedKill` (standing in for
  SIGKILL / power loss — the driver must *not* catch it), emit a **nan**
  batch (poisoned images), or **stall** for a configurable delay before
  continuing.  Every other batch is passed through untouched, and the
  wrapped loader's RNG is consumed identically to an unwrapped run, so a
  fault-free prefix of the trajectory is bit-identical to the reference.
* :class:`FaultyModule` — wraps a ``Module`` and corrupts (or raises
  from) its forward pass at a chosen call index.
* :class:`WorkerFaultInjector` — the chaos hook for the *parallel probe
  pool*: installed as ``repro.parallel.worker.FAULT_HOOK`` before the
  pool forks, it makes chosen (or random) worker evaluations **kill**
  the worker process, **hang** it past the supervisor's deadline, or
  ship a **corrupt** (schema-violating) result — plus kills that land
  at worker *startup*, i.e. mid-respawn.

All wrappers delegate unknown attributes to the wrapped object, so code
that pokes at ``loader._rng`` or ``module.training`` keeps working.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from repro.nn.modules import Module

__all__ = [
    "InjectedFault",
    "SimulatedKill",
    "FaultyLoader",
    "FaultyModule",
    "WorkerFaultInjector",
]


class InjectedFault(RuntimeError):
    """A deliberately injected failure (recoverable-error model)."""


class SimulatedKill(BaseException):
    """Stands in for SIGKILL / power loss.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so no
    ``except Exception`` recovery path in the code under test can absorb
    it — exactly like a real kill, the run must die and be *resumed*.
    """


class FaultyLoader:
    """Wrap a data loader and inject one fault at a global batch index.

    Parameters
    ----------
    loader:
        The loader to wrap.
    fail_at_batch:
        Zero-based global batch counter (across epochs) at which the
        fault fires.
    mode:
        ``"raise"`` (InjectedFault), ``"kill"`` (SimulatedKill),
        ``"nan"`` (poison the images with NaN) or ``"stall"`` (sleep
        ``stall_seconds`` then continue).
    once:
        If True (default) the fault fires exactly once; otherwise it
        fires on every batch from ``fail_at_batch`` onwards.
    stall_seconds:
        Sleep duration for ``mode="stall"``.
    """

    def __init__(
        self,
        loader,
        fail_at_batch: int,
        mode: str = "nan",
        once: bool = True,
        stall_seconds: float = 0.01,
    ) -> None:
        if mode not in ("raise", "kill", "nan", "stall"):
            raise ValueError(f"unknown fault mode {mode!r}")
        self.loader = loader
        self.fail_at_batch = fail_at_batch
        self.mode = mode
        self.once = once
        self.stall_seconds = stall_seconds
        self.batches_served = 0
        self.faults_fired = 0

    def __getattr__(self, name):
        return getattr(self.loader, name)

    def __len__(self) -> int:
        return len(self.loader)

    def _should_fire(self) -> bool:
        if self.once:
            return (
                self.batches_served == self.fail_at_batch
                and self.faults_fired == 0
            )
        return self.batches_served >= self.fail_at_batch

    def __iter__(self) -> Iterator:
        for images, targets in self.loader:
            if self._should_fire():
                self.faults_fired += 1
                if self.mode == "raise":
                    raise InjectedFault(
                        f"injected loader fault at batch "
                        f"{self.batches_served}"
                    )
                if self.mode == "kill":
                    raise SimulatedKill(
                        f"simulated kill at batch {self.batches_served}"
                    )
                if self.mode == "stall":
                    time.sleep(self.stall_seconds)
                elif self.mode == "nan":
                    images = np.full_like(images, np.nan)
            self.batches_served += 1
            yield images, targets


class FaultyModule(Module):
    """Wrap a module and corrupt its forward pass at a chosen call.

    ``mode="nan"`` replaces the output data with NaN; ``mode="raise"``
    raises :class:`InjectedFault`; ``mode="kill"`` raises
    :class:`SimulatedKill`.
    """

    def __init__(
        self,
        inner: Module,
        fail_at_call: int,
        mode: str = "nan",
        once: bool = True,
    ) -> None:
        super().__init__()
        if mode not in ("raise", "kill", "nan"):
            raise ValueError(f"unknown fault mode {mode!r}")
        self.inner = inner  # registered as a child: train/eval propagate
        self.fail_at_call = fail_at_call
        self.mode = mode
        self.once = once
        self.calls = 0
        self.faults_fired = 0

    def _should_fire(self) -> bool:
        if self.once:
            return self.calls == self.fail_at_call and self.faults_fired == 0
        return self.calls >= self.fail_at_call

    def forward(self, x):
        fire = self._should_fire()
        self.calls += 1
        if fire:
            self.faults_fired += 1
            if self.mode == "raise":
                raise InjectedFault(
                    f"injected module fault at call {self.calls - 1}"
                )
            if self.mode == "kill":
                raise SimulatedKill(
                    f"simulated kill at call {self.calls - 1}"
                )
        out = self.inner(x)
        if fire and self.mode == "nan":
            out.data = np.full_like(out.data, np.nan)
        return out


Trigger = Tuple[int, int]


class WorkerFaultInjector:
    """Chaos hook for the parallel probe pool's forked workers.

    Install *before* the pool is created::

        import repro.parallel.worker as worker_mod
        worker_mod.FAULT_HOOK = WorkerFaultInjector(
            tmp_path / "faults", kill_on={(0, 0)},
        )

    Every forked worker inherits the hook.  The worker consults
    ``on_start(worker_id)`` once before its ready handshake and
    ``__call__(worker_id, task_id, layer_names, bits)`` before each
    evaluation; the returned action is ``"kill"`` (``os._exit``, i.e. a
    crash the supervisor must respawn), ``"hang"`` (sleep past the
    supervisor's deadline), ``"corrupt"`` (ship a schema-violating
    result) or ``None``.

    Triggers fire in *child* processes, so per-object counters would
    reset on every fork; instead each trigger latches exactly once
    across all processes through marker files in ``state_dir``
    (``O_CREAT | O_EXCL`` is atomic).  That latch also means a
    respawned worker — whose per-life eval counter restarts at 0 — is
    not re-killed by the trigger that killed its predecessor.

    Parameters
    ----------
    state_dir:
        Directory for the cross-process marker files (use a tmp_path
        subdirectory; must be shared by parent and workers).
    kill_on / hang_on / corrupt_on:
        Sets of ``(worker_id, eval_index)`` where ``eval_index`` counts
        evaluations within one worker process's lifetime.  Each trigger
        fires at most once globally.
    kill_layers:
        Layer names that poison a candidate: *every* evaluation of a
        task touching one of them kills the worker (no once-latch), so
        the candidate keeps crashing respawned workers until the
        supervisor quarantines it.
    start_kill:
        Set of ``(worker_id, start_index)``: kill that worker's n-th
        process start (0 = initial fork, 1 = first respawn, ...) before
        the ready handshake — a fault landing mid-respawn.
    hang_seconds:
        Sleep duration for ``"hang"`` (default far past any deadline).
    """

    def __init__(
        self,
        state_dir: Union[str, Path],
        kill_on: Iterable[Trigger] = (),
        hang_on: Iterable[Trigger] = (),
        corrupt_on: Iterable[Trigger] = (),
        kill_layers: Sequence[str] = (),
        start_kill: Iterable[Trigger] = (),
        hang_seconds: float = 300.0,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.kill_on = set(kill_on)
        self.hang_on = set(hang_on)
        self.corrupt_on = set(corrupt_on)
        self.kill_layers = tuple(kill_layers)
        self.start_kill = set(start_kill)
        self.hang_seconds = hang_seconds
        self._evals = 0  # per-process eval counter (resets on fork/exec)

    def _latch(self, tag: str) -> bool:
        """Claim ``tag`` exactly once across all processes."""
        try:
            fd = os.open(
                self.state_dir / tag, os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def _start_index(self, worker_id: int) -> int:
        """Claim and return this process's start ordinal for the worker."""
        n = 0
        while not self._latch(f"start-{worker_id}-{n}"):
            n += 1
        return n

    def on_start(self, worker_id: int) -> Optional[str]:
        if (worker_id, self._start_index(worker_id)) in self.start_kill:
            return "kill"
        return None

    def __call__(
        self,
        worker_id: int,
        task_id: int,
        layer_names: Sequence[str],
        bits: Sequence[int],
    ) -> Optional[str]:
        index = self._evals
        self._evals += 1
        if any(name in self.kill_layers for name in layer_names):
            return "kill"
        key = (worker_id, index)
        if key in self.kill_on and self._latch(f"kill-{worker_id}-{index}"):
            return "kill"
        if key in self.hang_on and self._latch(f"hang-{worker_id}-{index}"):
            return "hang"
        if key in self.corrupt_on and self._latch(
            f"corrupt-{worker_id}-{index}"
        ):
            return "corrupt"
        return None
