"""Reference/threshold semantics of the collaboration stage.

These behaviours are the ones the reproduction notes identify as
stability-critical: the target derives from the *best achieved* accuracy
(so a collapsed step cannot silently lower the bar) and the initial
recovery anchors to the float accuracy.
"""

import numpy as np
import pytest

from repro.core import (
    BitLadder,
    CCQConfig,
    CCQQuantizer,
    RecoveryConfig,
    evaluate,
)
from repro.quantization import quantize_model


@pytest.fixture()
def quantized_pretrained(pretrained_net):
    net, baseline = pretrained_net
    quantize_model(net, "pact")
    return net, baseline


class TestInitialRecovery:
    def test_adaptive_initialize_targets_float_accuracy(
        self, quantized_pretrained, tiny_loaders
    ):
        net, baseline = quantized_pretrained
        train, val = tiny_loaders
        config = CCQConfig(
            ladder=BitLadder((8, 4)),
            probes_per_step=1,
            probe_batches=1,
            recovery=RecoveryConfig(mode="adaptive", max_epochs=3,
                                    slack=0.02),
            lr=0.02,
            initial_recovery_adaptive=True,
            seed=0,
        )
        ccq = CCQQuantizer(net, train, val, config=config)
        initial = ccq.initialize()
        # PACT at 8 bits is near-lossless, so the adaptive initial
        # recovery should land within slack of the float baseline.
        assert initial.accuracy >= baseline - 0.05

    def test_fixed_mode_runs_exact_epochs(self, quantized_pretrained,
                                          tiny_loaders):
        net, _ = quantized_pretrained
        train, val = tiny_loaders
        config = CCQConfig(
            ladder=BitLadder((8, 4)),
            probes_per_step=1,
            probe_batches=1,
            recovery=RecoveryConfig(mode="manual", epochs=0,
                                    use_hybrid_lr=False),
            initial_recovery_adaptive=False,
            initial_recovery_epochs=0,
            seed=0,
        )
        ccq = CCQQuantizer(net, train, val, config=config)
        before = {
            name: p.data.copy() for name, p in net.named_parameters()
        }
        ccq.initialize()
        # Zero epochs: weights untouched.
        for name, p in net.named_parameters():
            np.testing.assert_array_equal(p.data, before[name])


class TestReferenceTracking:
    def test_reference_is_best_so_far_not_collapsed_pre(
        self, quantized_pretrained, tiny_loaders
    ):
        """If a step collapses accuracy, the next recovery must target
        the best achieved level, not the collapsed one."""
        net, baseline = quantized_pretrained
        train, val = tiny_loaders
        config = CCQConfig(
            ladder=BitLadder((8, 2)),  # brutal single drop to 2 bits
            probes_per_step=1,
            probe_batches=1,
            recovery=RecoveryConfig(mode="adaptive", max_epochs=4,
                                    slack=0.02),
            lr=0.02,
            max_steps=2,
            seed=0,
        )
        ccq = CCQQuantizer(net, train, val, config=config)
        result = ccq.run()
        for rec in result.records:
            if rec.recovery.target_accuracy is not None:
                # Target always anchored near the best level seen, which
                # after adaptive initialization is near the baseline.
                assert rec.recovery.target_accuracy >= baseline - 0.1
