"""QIL interval learning and BNN/XNOR binary quantizers."""

import numpy as np
import pytest

from repro.nn.tensor import Tensor
from repro.quantization import (
    BNNActivationQuantizer,
    BNNWeightQuantizer,
    QILActivationQuantizer,
    QILWeightQuantizer,
    XNORWeightQuantizer,
    per_channel_symmetric_quantize,
)


class TestQILWeights:
    def test_prunes_small_magnitudes(self, rng):
        q = QILWeightQuantizer()
        q.set_bits(3)
        w = Tensor(rng.normal(size=(2000,)))
        out = q(w).data
        # Values well below the learned lower edge are zeroed.
        tiny = np.abs(w.data) < float(self.lower_edge(q)) * 0.5
        np.testing.assert_allclose(out[tiny], 0.0)

    @staticmethod
    def lower_edge(q):
        return float(q.center.data) - float(q.half_width.data)

    def test_saturates_to_unit(self, rng):
        q = QILWeightQuantizer()
        q.set_bits(3)
        out = q(Tensor(rng.normal(size=(2000,)) * 5)).data
        assert np.abs(out).max() <= 1.0 + 1e-9

    def test_sign_preserved(self, rng):
        q = QILWeightQuantizer()
        q.set_bits(4)
        w = rng.normal(size=(500,))
        out = q(Tensor(w)).data
        nonzero = out != 0
        np.testing.assert_array_equal(np.sign(out[nonzero]),
                                      np.sign(w[nonzero]))

    def test_interval_params_learnable(self, rng):
        q = QILWeightQuantizer()
        q.set_bits(3)
        w = Tensor(rng.normal(size=(500,)), requires_grad=True)
        q(w).sum().backward()
        assert q.center.grad is not None
        assert q.half_width.grad is not None
        assert len(q.parameters()) == 2

    def test_reinit_on_bits_change(self, rng):
        q = QILWeightQuantizer()
        q.set_bits(8)
        q(Tensor(rng.normal(size=(100,))))
        q.center.data[...] = 99.0
        q.set_bits(2)
        q(Tensor(rng.normal(size=(100,))))
        assert float(q.center.data) < 10.0

    def test_degenerate_half_width_reanchored(self, rng):
        q = QILWeightQuantizer()
        q.set_bits(3)
        q(Tensor(rng.normal(size=(100,))))
        q.half_width.data[...] = 0.0
        out = q(Tensor(rng.normal(size=(100,))))
        assert np.isfinite(out.data).all()


class TestQILActivations:
    def test_unsigned_output_range(self, rng):
        q = QILActivationQuantizer()
        q.set_bits(3)
        out = q(Tensor(rng.normal(size=(500,)) * 3)).data
        assert out.min() >= 0.0 and out.max() <= 1.0 + 1e-9

    def test_signed_mode(self, rng):
        q = QILActivationQuantizer(signed=True)
        q.set_bits(4)
        out = q(Tensor(rng.normal(size=(500,)))).data
        assert (out < 0).any()
        assert np.abs(out).max() <= 1.0 + 1e-9


class TestBNN:
    def test_binary_weights_are_pm_one(self, rng):
        q = BNNWeightQuantizer()
        q.set_bits(1)
        out = q(Tensor(rng.normal(size=(500,)))).data
        assert set(np.unique(out)).issubset({-1.0, 1.0})

    def test_sign_ste_gradient_masked_outside_unit(self):
        q = BNNWeightQuantizer()
        q.set_bits(1)
        w = Tensor(np.array([0.5, 3.0, -0.2, -4.0]), requires_grad=True)
        q(w).sum().backward()
        np.testing.assert_allclose(w.grad, [1.0, 0.0, 1.0, 0.0])

    def test_multibit_fallback(self, rng):
        q = BNNWeightQuantizer()
        q.set_bits(3)
        out = q(Tensor(rng.normal(size=(500,)))).data
        assert len(np.unique(out)) > 2
        assert np.abs(out).max() <= 1.0 + 1e-9

    def test_binary_activations(self, rng):
        q = BNNActivationQuantizer()
        q.set_bits(1)
        out = q(Tensor(rng.normal(size=(200,)))).data
        assert set(np.unique(out)).issubset({-1.0, 1.0})


class TestXNOR:
    def test_per_channel_scales_are_mean_abs(self, rng):
        q = XNORWeightQuantizer()
        q.set_bits(1)
        w = rng.normal(size=(4, 3, 3, 3))
        out = q(Tensor(w)).data
        for f in range(4):
            expected = np.abs(w[f]).mean()
            np.testing.assert_allclose(np.abs(out[f]), expected, atol=1e-9)

    def test_binary_channel_signs(self, rng):
        q = XNORWeightQuantizer()
        q.set_bits(1)
        w = rng.normal(size=(2, 8))
        out = q(Tensor(w)).data
        big = np.abs(w) > 0.05
        np.testing.assert_array_equal(np.sign(out)[big], np.sign(w)[big])

    def test_multibit_per_channel_ranges(self, rng):
        w = rng.normal(size=(4, 16))
        w[0] *= 10.0  # one wide-range channel
        out = per_channel_symmetric_quantize(Tensor(w), 3).data
        for f in range(4):
            assert np.abs(out[f]).max() <= np.abs(w[f]).max() + 1e-9
        # Per-channel scaling keeps the narrow channels' resolution: the
        # small channels are NOT collapsed to zero by channel 0's range.
        assert np.abs(out[1:]).max() > 0

    def test_per_channel_beats_per_tensor_on_skewed_weights(self, rng):
        from repro.quantization import fake_quantize_symmetric

        w = rng.normal(size=(4, 64))
        w[0] *= 20.0
        wt = Tensor(w)
        pc = per_channel_symmetric_quantize(wt, 3).data
        alpha = float(np.abs(w).max())
        pt = fake_quantize_symmetric(wt, 3, alpha).data
        assert ((w - pc) ** 2).mean() < ((w - pt) ** 2).mean()

    def test_per_channel_gradient_flows(self, rng):
        w = Tensor(rng.normal(size=(4, 8)), requires_grad=True)
        per_channel_symmetric_quantize(w, 3).sum().backward()
        assert w.grad is not None
        assert np.isfinite(w.grad).all()
