"""Static post-training quantization: ACIQ and KL calibration, observers."""

import numpy as np
import pytest

from repro.quantization import (
    HistogramObserver,
    MinMaxObserver,
    MovingAverageMinMaxObserver,
    aciq_clip,
    kl_divergence_clip,
    quantize_array_symmetric,
)


class TestObservers:
    def test_minmax_tracks_extremes(self, rng):
        obs = MinMaxObserver()
        obs.observe(np.array([1.0, 5.0]))
        obs.observe(np.array([-2.0, 3.0]))
        assert obs.range() == (-2.0, 5.0)

    def test_minmax_empty_raises(self):
        with pytest.raises(RuntimeError):
            MinMaxObserver().range()

    def test_moving_average_smooths_outliers(self):
        obs = MovingAverageMinMaxObserver(momentum=0.9)
        for _ in range(10):
            obs.observe(np.array([0.0, 1.0]))
        obs.observe(np.array([0.0, 100.0]))
        _, hi = obs.range()
        assert hi < 15.0  # outlier heavily damped

    def test_moving_average_first_observation(self):
        obs = MovingAverageMinMaxObserver()
        obs.observe(np.array([-1.0, 2.0]))
        assert obs.range() == (-1.0, 2.0)

    def test_histogram_total_mass(self, rng):
        obs = HistogramObserver(n_bins=64)
        obs.observe(rng.normal(size=500))
        obs.observe(rng.normal(size=300))
        counts, _ = obs.histogram()
        assert counts.sum() == pytest.approx(800)

    def test_histogram_rebins_on_wider_range(self, rng):
        obs = HistogramObserver(n_bins=64)
        obs.observe(rng.uniform(-1, 1, size=400))
        obs.observe(np.array([10.0]))
        counts, max_abs = obs.histogram()
        assert max_abs == pytest.approx(10.0)
        assert counts.sum() == pytest.approx(401, rel=0.02)

    def test_histogram_empty_raises(self):
        with pytest.raises(RuntimeError):
            HistogramObserver().histogram()


class TestACIQ:
    def test_clip_below_max_for_gaussian(self, rng):
        w = rng.normal(size=20000)
        clip = aciq_clip(w, bits=4, dist="gauss")
        assert 0 < clip < np.abs(w).max()

    def test_clip_grows_with_bits(self, rng):
        w = rng.normal(size=20000)
        clips = [aciq_clip(w, bits=b, dist="gauss") for b in (2, 4, 8)]
        assert clips[0] < clips[1] < clips[2]

    def test_auto_prefers_laplace_for_laplace_data(self, rng):
        w = rng.laplace(size=20000)
        auto = aciq_clip(w, bits=4, dist="auto")
        laplace = aciq_clip(w, bits=4, dist="laplace")
        assert auto == pytest.approx(laplace)

    def test_auto_prefers_gauss_for_gauss_data(self, rng):
        w = rng.normal(size=20000)
        auto = aciq_clip(w, bits=4, dist="auto")
        gauss = aciq_clip(w, bits=4, dist="gauss")
        assert auto == pytest.approx(gauss)

    def test_scales_with_data(self, rng):
        w = rng.normal(size=20000)
        assert aciq_clip(w * 4, bits=4, dist="gauss") == pytest.approx(
            4 * aciq_clip(w, bits=4, dist="gauss"), rel=1e-6
        )

    def test_unknown_dist_rejected(self, rng):
        with pytest.raises(ValueError):
            aciq_clip(rng.normal(size=10), bits=4, dist="cauchy")

    def test_aciq_beats_max_clipping_in_mse(self, rng):
        w = rng.normal(size=50000)
        bits = 3
        clip = aciq_clip(w, bits=bits, dist="gauss")
        mse_aciq = ((w - quantize_array_symmetric(w, bits, clip)) ** 2).mean()
        max_clip = np.abs(w).max()
        mse_max = ((w - quantize_array_symmetric(w, bits, max_clip)) ** 2).mean()
        assert mse_aciq < mse_max


class TestKLCalibration:
    def test_returns_threshold_within_range(self, rng):
        obs = HistogramObserver(n_bins=512)
        obs.observe(rng.normal(size=30000))
        counts, max_abs = obs.histogram()
        clip = kl_divergence_clip(counts, max_abs, bits=4)
        assert 0 < clip <= max_abs

    def test_clips_heavy_tail(self, rng):
        # A distribution with a tiny far tail should be clipped well below
        # its max.
        data = np.concatenate([rng.normal(size=30000), [50.0]])
        obs = HistogramObserver(n_bins=512)
        obs.observe(data)
        counts, max_abs = obs.histogram()
        clip = kl_divergence_clip(counts, max_abs, bits=4)
        assert clip < 0.5 * max_abs

    def test_more_bits_clip_wider(self, rng):
        obs = HistogramObserver(n_bins=512)
        obs.observe(rng.normal(size=30000))
        counts, max_abs = obs.histogram()
        clip2 = kl_divergence_clip(counts, max_abs, bits=2)
        clip8 = kl_divergence_clip(counts, max_abs, bits=8)
        assert clip2 <= clip8 + 1e-9


class TestQuantizeArray:
    def test_grid_and_range(self, rng):
        w = rng.normal(size=1000)
        out = quantize_array_symmetric(w, 3, 1.5)
        assert (np.abs(out) <= 1.5 + 1e-12).all()
        assert len(np.unique(out)) <= 7
