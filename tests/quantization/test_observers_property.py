"""Property tests for range observers (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.quantization import (
    HistogramObserver,
    MinMaxObserver,
    MovingAverageMinMaxObserver,
)

batches = st.lists(
    arrays(np.float64, st.integers(1, 30).map(lambda n: (n,)),
           elements=st.floats(-50, 50)),
    min_size=1, max_size=5,
)


class TestMinMaxProperties:
    @given(batches)
    @settings(max_examples=40, deadline=None)
    def test_range_contains_all_observed(self, data):
        obs = MinMaxObserver()
        for batch in data:
            obs.observe(batch)
        lo, hi = obs.range()
        allv = np.concatenate(data)
        assert lo <= allv.min() + 1e-12
        assert hi >= allv.max() - 1e-12

    @given(batches)
    @settings(max_examples=40, deadline=None)
    def test_order_invariant(self, data):
        a = MinMaxObserver()
        b = MinMaxObserver()
        for batch in data:
            a.observe(batch)
        for batch in reversed(data):
            b.observe(batch)
        assert a.range() == b.range()


class TestMovingAverageProperties:
    @given(batches)
    @settings(max_examples=40, deadline=None)
    def test_range_bounded_by_observed_extremes(self, data):
        obs = MovingAverageMinMaxObserver(momentum=0.7)
        for batch in data:
            obs.observe(batch)
        lo, hi = obs.range()
        allv = np.concatenate(data)
        # EMA stays inside the convex hull of observed extremes.
        assert lo >= allv.min() - 1e-9
        assert hi <= allv.max() + 1e-9


class TestHistogramProperties:
    @given(batches)
    @settings(max_examples=40, deadline=None)
    def test_mass_approximately_conserved(self, data):
        obs = HistogramObserver(n_bins=128)
        for batch in data:
            obs.observe(batch)
        counts, max_abs = obs.histogram()
        total = sum(len(b) for b in data)
        # Re-binning on range growth loses at most a few boundary counts.
        assert counts.sum() == pytest.approx(total, rel=0.05, abs=3)
        assert max_abs >= max(np.abs(np.concatenate(data)).max(), 1e-12) - 1e-9
