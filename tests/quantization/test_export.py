"""Integer export packing: exact round trips and realized compression."""

import numpy as np
import pytest

from repro import models
from repro.quantization import quantize_model, quantized_layers, set_uniform_bits
from repro.quantization.export import pack_model, unpack_into


def quantized_net(bits=4, policy="pact"):
    net = models.SmallConvNet(width=8, rng=np.random.default_rng(0))
    quantize_model(net, policy)
    set_uniform_bits(net, bits, bits)
    return net


class TestPackRoundTrip:
    @pytest.mark.parametrize("policy", ["dorefa", "wrpn", "pact_sawb", "lqnets"])
    def test_unpack_is_exact(self, policy):
        net = quantized_net(bits=3, policy=policy)
        packed = pack_model(net)
        for name, layer in quantized_layers(net):
            expected = layer.quantized_weight().data
            np.testing.assert_array_equal(packed.layers[name].unpack(), expected)

    def test_unpack_into_model_preserves_forward(self, rng):
        from repro.nn.tensor import Tensor

        net = quantized_net(bits=3)
        x = Tensor(rng.normal(size=(2, 3, 12, 12)))
        before = net(x).data.copy()
        packed = pack_model(net)
        unpack_into(net, packed)
        # The shadow weights now hold the quantized values; quantizing them
        # again is idempotent on a uniform grid, so outputs match.
        after = net(x).data
        np.testing.assert_allclose(after, before, atol=1e-9)

    def test_unknown_layer_raises(self):
        net = quantized_net()
        packed = pack_model(net)
        other = models.MLP(8, [4], 2, rng=np.random.default_rng(0))
        quantize_model(other, "pact")
        with pytest.raises(KeyError):
            unpack_into(other, packed)


class TestSizes:
    def test_low_bits_pack_small(self):
        net = quantized_net(bits=2)
        packed = pack_model(net)
        # 2-bit symmetric grids have <= 2^2 levels -> <= 2 index bits,
        # so realized compression approaches 16x (codebook overhead aside).
        assert packed.realized_compression > 10.0

    def test_more_bits_bigger_payload(self):
        small = pack_model(quantized_net(bits=2)).payload_bytes
        large = pack_model(quantized_net(bits=8)).payload_bytes
        assert large > small

    def test_fp_layers_skipped(self):
        net = quantized_net(bits=4)
        layers = quantized_layers(net)
        layers[0][1].w_bits = None
        packed = pack_model(net)
        assert layers[0][0] not in packed.layers

    def test_index_bits_match_level_count(self):
        net = quantized_net(bits=3, policy="pact_sawb")
        packed = pack_model(net)
        for layer in packed.layers.values():
            assert 2 ** layer.index_bits >= len(layer.codebook)
            assert 2 ** (layer.index_bits - 1) < len(layer.codebook) or (
                layer.index_bits == 1
            )

    def test_payload_accounting(self):
        net = quantized_net(bits=4)
        packed = pack_model(net)
        total = sum(l.payload_bytes for l in packed.layers.values())
        assert packed.payload_bytes == total
        assert packed.fp32_bytes == sum(
            int(np.prod(l.shape)) * 4 for l in packed.layers.values()
        )
