"""Integer-arithmetic execution must match the fake-quant float path."""

import numpy as np
import pytest

from repro import models, nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.quantization import (
    fake_quantize_symmetric,
    fake_quantize_unsigned,
    get_policy,
    quantize_model,
    quantized_layers,
    set_uniform_bits,
)
from repro.quantization.integer_inference import (
    AffineCode,
    extract_affine_code,
    integer_conv2d,
    integer_linear,
)


class TestExtraction:
    def test_symmetric_grid(self, rng):
        q = fake_quantize_symmetric(Tensor(rng.normal(size=(500,))), 3, 1.0)
        code = extract_affine_code(q.data)
        np.testing.assert_allclose(code.dequantize(), q.data, atol=1e-12)
        assert code.scale == pytest.approx(1 / 3)

    def test_unsigned_grid(self, rng):
        q = fake_quantize_unsigned(
            Tensor(np.abs(rng.normal(size=(500,)))), 4, 2.0
        )
        code = extract_affine_code(q.data)
        np.testing.assert_allclose(code.dequantize(), q.data, atol=1e-12)
        assert code.offset == pytest.approx(q.data.min())

    def test_dorefa_zero_free_grid(self, rng):
        # DoReFa's 2^k-level weight grid has no zero level; the offset
        # form must still decompose it exactly.
        q = get_policy("dorefa").make_weight_quantizer()
        q.set_bits(2)
        out = q(Tensor(rng.normal(size=(500,)))).data
        code = extract_affine_code(out)
        np.testing.assert_allclose(code.dequantize(), out, atol=1e-12)
        assert 0.0 not in np.unique(out)

    def test_constant_tensor(self):
        code = extract_affine_code(np.full((4, 4), 2.5))
        np.testing.assert_allclose(code.dequantize(), 2.5)

    def test_nonuniform_grid_rejected(self):
        values = np.array([0.0, 1.0, 2.0, 4.5])  # uneven spacing
        with pytest.raises(ValueError, match="uniform grid"):
            extract_affine_code(np.repeat(values, 10))

    def test_codes_are_nonnegative_ints(self, rng):
        q = fake_quantize_symmetric(Tensor(rng.normal(size=(200,))), 4, 1.5)
        code = extract_affine_code(q.data)
        assert code.codes.dtype == np.int64
        assert code.codes.min() == 0


class TestIntegerLinear:
    def test_matches_float(self, rng):
        xq = fake_quantize_unsigned(
            Tensor(np.abs(rng.normal(size=(4, 16)))), 4, 2.0
        ).data
        wq = fake_quantize_symmetric(
            Tensor(rng.normal(size=(8, 16))), 3, 1.0
        ).data
        bias = rng.normal(size=(8,))
        expected = xq @ wq.T + bias
        out = integer_linear(
            extract_affine_code(xq), extract_affine_code(wq), bias
        )
        np.testing.assert_allclose(out, expected, atol=1e-9)


class TestIntegerConv:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_matches_float_conv(self, rng, stride, padding):
        xq = fake_quantize_unsigned(
            Tensor(np.abs(rng.normal(size=(2, 3, 8, 8)))), 4, 2.0
        ).data
        wq = fake_quantize_symmetric(
            Tensor(rng.normal(size=(4, 3, 3, 3))), 3, 1.0
        ).data
        bias = rng.normal(size=(4,))
        expected = F.conv2d(
            Tensor(xq), Tensor(wq), Tensor(bias),
            stride=stride, padding=padding,
        ).data
        out = integer_conv2d(
            extract_affine_code(xq), extract_affine_code(wq), bias,
            stride=stride, padding=padding,
        )
        np.testing.assert_allclose(out, expected, atol=1e-9)

    def test_offset_grids_with_padding(self, rng):
        # Both tensors on zero-free grids + padding: the correction-term
        # path must exactly reproduce the float conv.
        q = get_policy("dorefa").make_weight_quantizer()
        q.set_bits(2)
        wq = q(Tensor(rng.normal(size=(2, 2, 3, 3)))).data
        xq = q(Tensor(rng.normal(size=(1, 2, 6, 6)))).data
        expected = F.conv2d(Tensor(xq), Tensor(wq), padding=1).data
        out = integer_conv2d(
            extract_affine_code(xq), extract_affine_code(wq), padding=1
        )
        np.testing.assert_allclose(out, expected, atol=1e-9)


class TestIntNativeLowering:
    """The integer path must be integer end to end — no float64
    transport of codes (the bug this lowering replaced: codes took an
    im2col ride as float64 and came back through ``np.round``)."""

    def test_integer_conv_never_rounds(self, rng, monkeypatch):
        x = extract_affine_code(
            fake_quantize_unsigned(
                Tensor(np.abs(rng.normal(size=(2, 3, 8, 8)))), 4, 2.0
            ).data
        )
        w = extract_affine_code(
            fake_quantize_symmetric(
                Tensor(rng.normal(size=(4, 3, 3, 3))), 3, 1.0
            ).data
        )
        bias = rng.normal(size=(4,))

        real_round = np.round

        def spy_round(a, *args, **kwargs):
            # np.pad legitimately rounds its tiny integer pad-width
            # array internally; what must never happen again is codes
            # coming back from a float im2col through np.round.
            arr = np.asarray(a)
            if arr.dtype.kind == "f" and arr.size > 4:
                raise AssertionError(
                    "np.round of a float array inside the integer path "
                    "means codes took a float round-trip"
                )
            return real_round(a, *args, **kwargs)

        monkeypatch.setattr(np, "round", spy_round)
        integer_conv2d(x, w, bias, stride=2, padding=1)
        integer_linear(
            AffineCode(x.codes.reshape(2, -1)[:, :27], x.scale, x.offset),
            AffineCode(w.codes.reshape(4, -1), w.scale, w.offset),
        )

    def test_lowering_receives_integer_arrays_only(self, rng, monkeypatch):
        from repro.nn.backends import KernelBackend

        x = extract_affine_code(
            fake_quantize_unsigned(
                Tensor(np.abs(rng.normal(size=(1, 2, 6, 6)))), 3, 1.0
            ).data
        )
        w = extract_affine_code(
            fake_quantize_symmetric(
                Tensor(rng.normal(size=(3, 2, 3, 3))), 3, 1.0
            ).data
        )
        seen = []
        real_im2col = KernelBackend.im2col

        def spy(self, array, *args, **kwargs):
            seen.append(np.asarray(array).dtype)
            return real_im2col(self, array, *args, **kwargs)

        monkeypatch.setattr(KernelBackend, "im2col", spy)
        integer_conv2d(x, w, padding=1)
        assert seen, "integer conv never reached the im2col lowering"
        assert all(dtype == np.int64 for dtype in seen)

    def test_codes_beyond_2_53_stay_exact(self):
        """Codes above 2^53 are not float64-representable; the old
        float64 im2col silently corrupted them before accumulation.
        With integer-native lowering the accumulator is exact and only
        the final (exactly representable here) sum is converted."""
        big = 2 ** 53 + 1  # rounds to 2^53 as float64
        x = AffineCode(
            codes=np.array([big, 1], dtype=np.int64).reshape(1, 2, 1, 1),
            scale=1.0, offset=0.0,
        )
        w = AffineCode(
            codes=np.ones((1, 2, 1, 1), dtype=np.int64),
            scale=1.0, offset=0.0,
        )
        out = integer_conv2d(x, w)
        # Exact: (2^53 + 1) + 1 = 2^53 + 2, representable as float64.
        # The float round-trip produced 2^53 (big snapped to 2^53 on
        # the way into the im2col matrix).
        assert out.item() == float(2 ** 53 + 2)

        lin = integer_linear(
            AffineCode(x.codes.reshape(1, 2), 1.0, 0.0),
            AffineCode(w.codes.reshape(1, 2), 1.0, 0.0),
        )
        assert lin.item() == float(2 ** 53 + 2)

    def test_column_matrix_is_integer(self, rng):
        from repro.nn.backends import current

        codes = rng.integers(0, 255, size=(1, 2, 6, 6)).astype(np.int64)
        cols, mask, _ = current().int_im2col(codes, (3, 3), (1, 1), (1, 1))
        assert cols.dtype == np.int64
        assert mask.dtype == np.int64
        assert set(np.unique(mask)) <= {0, 1}


class TestEndToEndLayer:
    @pytest.mark.parametrize("policy", ["dorefa", "wrpn", "pact", "pact_sawb"])
    def test_quant_conv_layer_matches_integer_path(self, policy, rng):
        net = models.SmallConvNet(width=4, rng=np.random.default_rng(0))
        quantize_model(net, policy)
        set_uniform_bits(net, 3, 3)
        _, conv = quantized_layers(net)[1]  # an inner layer (unsigned acts)

        x = Tensor(np.abs(rng.normal(size=(2, conv.in_channels, 6, 6))))
        xq = conv.act_quantizer(x).data
        wq = conv.weight_quantizer(conv.weight).data
        expected = F.conv2d(
            Tensor(xq), Tensor(wq), stride=conv.stride, padding=conv.padding
        ).data
        out = integer_conv2d(
            extract_affine_code(xq), extract_affine_code(wq),
            stride=conv.stride, padding=conv.padding,
        )
        np.testing.assert_allclose(out, expected, atol=1e-8)
