"""Quantized module wrappers and model conversion."""

import numpy as np
import pytest

from repro import models, nn
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.quantization import (
    QuantConv2d,
    QuantLinear,
    available_policies,
    collect_quantizer_parameters,
    collect_regularization,
    get_bit_config,
    get_policy,
    quantize_model,
    quantized_layers,
    register_policy,
    set_bit_config,
    set_uniform_bits,
)
from repro.quantization.policy import QuantPolicy


def small_net(seed=0):
    return models.SmallConvNet(width=4, rng=np.random.default_rng(seed))


class TestConversion:
    def test_replaces_all_convs_and_linears(self):
        net = quantize_model(small_net(), "dorefa")
        layers = quantized_layers(net)
        assert len(layers) == 4  # conv1..3 + fc
        assert isinstance(layers[0][1], QuantConv2d)
        assert isinstance(layers[-1][1], QuantLinear)

    def test_first_layer_gets_signed_act_quantizer(self):
        net = quantize_model(small_net(), "dorefa")
        layers = quantized_layers(net)
        assert layers[0][1].act_quantizer.signed is True
        assert layers[1][1].act_quantizer.signed is False

    def test_skip_leaves_layer_float(self):
        net = quantize_model(small_net(), "dorefa", skip=("fc",))
        names = [n for n, _ in quantized_layers(net)]
        assert "fc" not in names

    def test_shares_parameter_tensors(self):
        net = small_net()
        original_weight = net.conv1.weight
        quantize_model(net, "dorefa")
        assert net.conv1.weight is original_weight

    def test_idempotent(self):
        net = quantize_model(small_net(), "dorefa")
        quantize_model(net, "dorefa")
        assert len(quantized_layers(net)) == 4

    def test_fp_when_bits_unset(self, rng):
        net_q = quantize_model(small_net(3), "dorefa")
        net_f = small_net(3)
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        np.testing.assert_allclose(net_q(x).data, net_f(x).data)

    def test_resnet_conversion_counts(self):
        net = models.resnet20(width_mult=0.25, rng=np.random.default_rng(0))
        quantize_model(net, "pact")
        # ResNet20: 19 convs + 2 shortcut convs + 1 fc = 22
        assert len(quantized_layers(net)) == 22

    def test_unknown_policy_raises(self):
        with pytest.raises(KeyError, match="unknown quantization policy"):
            quantize_model(small_net(), "nonexistent")


class TestBitConfiguration:
    def test_set_uniform(self):
        net = quantize_model(small_net(), "dorefa")
        set_uniform_bits(net, 4, 4)
        for _, layer in quantized_layers(net):
            assert layer.w_bits == 4 and layer.a_bits == 4

    def test_first_last_fp_override(self):
        net = quantize_model(small_net(), "dorefa")
        set_uniform_bits(net, 3, 3, first_last_w_bits=None,
                         first_last_a_bits=None)
        layers = quantized_layers(net)
        assert layers[0][1].w_bits is None
        assert layers[-1][1].w_bits is None
        assert layers[1][1].w_bits == 3

    def test_get_set_roundtrip(self):
        net = quantize_model(small_net(), "dorefa")
        set_uniform_bits(net, 4, 2)
        config = get_bit_config(net)
        set_uniform_bits(net, 8, 8)
        set_bit_config(net, config)
        assert get_bit_config(net) == config

    def test_set_config_unknown_layer_raises(self):
        net = quantize_model(small_net(), "dorefa")
        with pytest.raises(KeyError):
            set_bit_config(net, {"bogus": (4, 4)})

    def test_weight_size_bits(self):
        net = quantize_model(small_net(), "dorefa")
        layers = quantized_layers(net)
        _, fc = layers[-1]
        fc.w_bits = 4
        assert fc.weight_size_bits() == fc.weight.size * 4
        fc.w_bits = None
        assert fc.weight_size_bits() == fc.weight.size * 32


class TestQuantizedForward:
    def test_quantization_changes_output(self, rng):
        net = quantize_model(small_net(), "dorefa")
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        fp_out = net(x).data.copy()
        set_uniform_bits(net, 2, 2)
        q_out = net(x).data
        assert not np.allclose(fp_out, q_out)

    def test_backward_reaches_all_weights(self, rng):
        net = quantize_model(small_net(), "pact")
        set_uniform_bits(net, 4, 4)
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        y = rng.integers(0, 10, size=2)
        F.cross_entropy(net(x), y).backward()
        for _, layer in quantized_layers(net):
            assert layer.weight.grad is not None

    @pytest.mark.parametrize("policy", sorted(["dorefa", "wrpn", "pact",
                                               "pact_sawb", "lsq", "lqnets"]))
    def test_every_policy_trains_one_step(self, policy, rng):
        net = quantize_model(small_net(), policy)
        set_uniform_bits(net, 3, 3)
        from repro.core.training import make_sgd

        opt = make_sgd(net, lr=0.01)
        x = Tensor(rng.normal(size=(4, 3, 8, 8)))
        y = rng.integers(0, 10, size=4)
        loss = F.cross_entropy(net(x), y)
        loss.backward()
        opt.step()
        loss2 = F.cross_entropy(net(x), y)
        assert np.isfinite(loss2.item())

    def test_quantized_weight_accessor(self, rng):
        net = quantize_model(small_net(), "dorefa")
        _, conv = quantized_layers(net)[0]
        conv.w_bits = 2
        wq = conv.quantized_weight().data
        assert len(np.unique(wq)) <= 4


class TestQuantizerParameters:
    def test_pact_alphas_collected(self):
        net = quantize_model(small_net(), "pact")
        params = collect_quantizer_parameters(net)
        assert len(params) == 4  # one alpha per layer

    def test_quantizer_params_in_state_dict(self):
        net = quantize_model(small_net(), "pact")
        state = net.state_dict()
        assert any("aq_param" in k for k in state)

    def test_regularization_sums_all_layers(self):
        net = quantize_model(small_net(), "pact")
        reg = collect_regularization(net)
        expected = sum(
            float(l.act_quantizer.alpha.data) ** 2 * l.act_quantizer.reg_lambda
            for _, l in quantized_layers(net)
        )
        assert reg.item() == pytest.approx(expected)

    def test_dorefa_has_no_regularization(self):
        net = quantize_model(small_net(), "dorefa")
        assert collect_regularization(net) is None


class TestPolicyRegistry:
    def test_available_contains_paper_policies(self):
        names = available_policies()
        for expected in ("dorefa", "wrpn", "pact", "pact_sawb", "lsq", "lqnets"):
            assert expected in names

    def test_get_policy(self):
        assert get_policy("pact").name == "pact"

    def test_register_custom_policy(self):
        from repro.quantization.base import IdentityQuantizer

        policy = QuantPolicy(
            "custom_test",
            IdentityQuantizer,
            lambda signed: IdentityQuantizer(),
        )
        register_policy(policy)
        assert get_policy("custom_test") is policy
        net = quantize_model(small_net(), "custom_test")
        assert len(quantized_layers(net)) == 4
