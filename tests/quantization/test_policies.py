"""Per-policy quantizer behaviour: DoReFa, WRPN, PACT, SAWB, LSQ, LQ-Nets."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import Tensor
from repro.quantization import (
    DoReFaActivationQuantizer,
    DoReFaWeightQuantizer,
    LQNetsWeightQuantizer,
    LSQActivationQuantizer,
    LSQWeightQuantizer,
    PACTActivationQuantizer,
    SAWBWeightQuantizer,
    WRPNActivationQuantizer,
    WRPNWeightQuantizer,
    lloyd_levels,
    sawb_alpha,
)


class TestDoReFa:
    def test_weight_range(self, rng):
        q = DoReFaWeightQuantizer()
        q.set_bits(3)
        out = q(Tensor(rng.normal(size=(100,)) * 5)).data
        assert (np.abs(out) <= 1.0 + 1e-9).all()

    def test_weight_level_count(self, rng):
        q = DoReFaWeightQuantizer()
        q.set_bits(2)
        out = q(Tensor(rng.normal(size=(500,)))).data
        assert len(np.unique(out)) <= 4

    def test_binary_uses_mean_abs_scale(self, rng):
        q = DoReFaWeightQuantizer()
        q.set_bits(1)
        w = rng.normal(size=(200,))
        out = q(Tensor(w)).data
        scale = np.abs(w).mean()
        np.testing.assert_allclose(np.abs(out), scale, atol=1e-9)
        # sign preserved for clearly nonzero weights
        big = np.abs(w) > 0.1
        np.testing.assert_allclose(np.sign(out)[big], np.sign(w)[big])

    def test_gradient_flows_to_weight(self, rng):
        q = DoReFaWeightQuantizer()
        q.set_bits(4)
        w = Tensor(rng.normal(size=(20,)), requires_grad=True)
        q(w).sum().backward()
        assert w.grad is not None
        assert np.abs(w.grad).sum() > 0

    def test_all_zero_weights_stay_zero(self):
        # Regression: max|tanh(w)| == 0 made the affine map 0/0 -> NaN.
        q = DoReFaWeightQuantizer()
        for bits in (2, 4, 8):
            q.set_bits(bits)
            out = q(Tensor(np.zeros(16))).data
            assert np.isfinite(out).all()
            np.testing.assert_array_equal(out, 0.0)

    def test_all_zero_weights_keep_gradient_path(self):
        q = DoReFaWeightQuantizer()
        q.set_bits(4)
        w = Tensor(np.zeros(8), requires_grad=True)
        q(w).sum().backward()
        assert w.grad is not None
        assert np.isfinite(w.grad).all()

    def test_activation_clips_to_unit(self, rng):
        q = DoReFaActivationQuantizer()
        q.set_bits(4)
        out = q(Tensor(rng.normal(size=(100,)) * 3)).data
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_signed_activation_preserves_negatives(self, rng):
        q = DoReFaActivationQuantizer(signed=True)
        q.set_bits(8)
        x = rng.normal(size=(100,))
        out = q(Tensor(x)).data
        assert (out < 0).any()
        np.testing.assert_allclose(out, x, atol=np.abs(x).max() / 100)

    def test_high_bits_near_lossless(self, rng):
        q = DoReFaWeightQuantizer()
        q.set_bits(8)
        w = rng.normal(size=(100,)) * 0.1
        out = q(Tensor(w)).data
        corr = np.corrcoef(w, out)[0, 1]
        assert corr > 0.999


class TestWRPN:
    def test_weight_clip_and_levels(self, rng):
        q = WRPNWeightQuantizer()
        q.set_bits(3)
        out = q(Tensor(rng.normal(size=(300,)) * 4)).data
        assert (np.abs(out) <= 1.0 + 1e-9).all()
        # 2^(k-1) - 1 = 3 magnitude steps per sign plus zero
        assert len(np.unique(out)) <= 7

    def test_values_inside_clip_quantized_to_grid(self):
        q = WRPNWeightQuantizer()
        q.set_bits(3)
        out = q(Tensor(np.array([0.4]))).data
        np.testing.assert_allclose(out, [1 / 3], atol=1e-9)

    def test_activation_unsigned(self, rng):
        q = WRPNActivationQuantizer()
        q.set_bits(2)
        out = q(Tensor(rng.normal(size=(100,)))).data
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_signed_activation_mode(self, rng):
        q = WRPNActivationQuantizer(signed=True)
        q.set_bits(4)
        out = q(Tensor(rng.normal(size=(100,)) * 2)).data
        assert (out < 0).any()
        assert (np.abs(out) <= 1.0 + 1e-9).all()


class TestPACT:
    def test_clip_at_alpha(self, rng):
        q = PACTActivationQuantizer(init_alpha=2.0)
        q.set_bits(8)
        out = q(Tensor(rng.normal(size=(200,)) * 10)).data
        assert out.max() <= 2.0 + 1e-9
        assert out.min() >= 0.0

    def test_alpha_gradient_from_saturated_region(self):
        q = PACTActivationQuantizer(init_alpha=1.0)
        q.set_bits(8)
        x = Tensor(np.array([5.0, 0.5, -3.0]))  # one saturated, one inside
        q(x).sum().backward()
        # dy/dalpha = 1 on the saturated sample only
        assert q.alpha.grad == pytest.approx(1.0, abs=1e-6)

    def test_alpha_no_gradient_when_nothing_clips(self):
        q = PACTActivationQuantizer(init_alpha=10.0)
        q.set_bits(8)
        q(Tensor(np.array([0.5, 0.2]))).sum().backward()
        assert q.alpha.grad == pytest.approx(0.0, abs=1e-6)

    def test_regularization_is_quadratic(self):
        q = PACTActivationQuantizer(init_alpha=3.0, reg_lambda=0.1)
        assert q.regularization().item() == pytest.approx(0.9)

    def test_signed_two_sided_clip(self, rng):
        q = PACTActivationQuantizer(init_alpha=1.5, signed=True)
        q.set_bits(8)
        x = rng.normal(size=(500,)) * 5
        out = q(Tensor(x)).data
        assert (np.abs(out) <= 1.5 + 1e-9).all()
        inside = np.abs(x) < 1.4
        np.testing.assert_allclose(out[inside], x[inside], atol=0.02)

    def test_signed_alpha_gradient_two_tails(self):
        q = PACTActivationQuantizer(init_alpha=1.0, signed=True)
        q.set_bits(8)
        x = Tensor(np.array([5.0, -5.0, 0.1]))
        q(x).sum().backward()
        # +1 from the upper tail, -1 from the lower tail
        assert q.alpha.grad == pytest.approx(0.0, abs=1e-6)

    def test_alpha_registered_as_parameter(self):
        q = PACTActivationQuantizer()
        assert q.parameters() == [q.alpha]


class TestSAWB:
    def test_alpha_positive(self, rng):
        for bits in (2, 3, 4):
            alpha = sawb_alpha(rng.normal(size=(1000,)), bits)
            assert alpha > 0

    def test_alpha_scales_with_distribution(self, rng):
        w = rng.normal(size=(2000,))
        a1 = sawb_alpha(w, 2)
        a2 = sawb_alpha(w * 3.0, 2)
        assert a2 == pytest.approx(3.0 * a1, rel=1e-6)

    def test_alpha_below_max_for_heavy_tails(self, rng):
        # SAWB should clip inside the extremes for a heavy-tailed sample.
        w = rng.standard_t(3, size=5000)
        alpha = sawb_alpha(w, 2)
        assert alpha < np.abs(w).max()

    def test_quantizer_output_in_range(self, rng):
        q = SAWBWeightQuantizer()
        q.set_bits(2)
        w = rng.normal(size=(500,))
        out = q(Tensor(w)).data
        alpha = sawb_alpha(w, 2)
        assert (np.abs(out) <= alpha + 1e-9).all()

    def test_near_optimal_mse_vs_line_search(self, rng):
        from repro.quantization.sawb import _mse_optimal_alpha
        from repro.quantization.base import n_levels

        w = rng.normal(size=(5000,))
        bits = 2
        steps = n_levels(bits, signed=True)

        def mse(alpha):
            q = np.clip(np.round(w / (alpha / steps)), -steps, steps)
            return ((w - q * (alpha / steps)) ** 2).mean()

        sawb = mse(sawb_alpha(w, bits))
        optimal = mse(_mse_optimal_alpha(w, bits))
        assert sawb <= optimal * 1.25  # closed form within 25% of optimum


class TestLSQ:
    def test_step_initialized_from_stats(self, rng):
        q = LSQWeightQuantizer()
        q.set_bits(4)
        w = Tensor(rng.normal(size=(100,)))
        q(w)
        expected = 2 * np.abs(w.data).mean() / np.sqrt(7)
        assert float(q.step.data) == pytest.approx(expected)

    def test_step_receives_gradient(self, rng):
        q = LSQWeightQuantizer()
        q.set_bits(3)
        w = Tensor(rng.normal(size=(50,)), requires_grad=True)
        q(w).sum().backward()
        assert q.step.grad is not None

    def test_reinit_on_bits_change(self, rng):
        q = LSQWeightQuantizer()
        q.set_bits(8)
        w = Tensor(rng.normal(size=(100,)))
        q(w)
        s8 = float(q.step.data)
        q.set_bits(2)
        q(w)
        assert float(q.step.data) != s8

    def test_negative_step_reanchored(self, rng):
        q = LSQWeightQuantizer()
        q.set_bits(4)
        w = Tensor(rng.normal(size=(10,)))
        q(w)
        q.step.data[...] = -1.0
        out = q(w)
        assert float(q.step.data) > 0
        assert np.isfinite(out.data).all()

    def test_activation_unsigned_bounds(self, rng):
        q = LSQActivationQuantizer()
        q.set_bits(3)
        out = q(Tensor(np.abs(rng.normal(size=(100,))))).data
        assert out.min() >= 0.0

    def test_activation_signed_mode(self, rng):
        q = LSQActivationQuantizer(signed=True)
        q.set_bits(4)
        out = q(Tensor(rng.normal(size=(100,)))).data
        assert (out < 0).any()


class TestLQNets:
    def test_lloyd_levels_sorted_and_bounded(self, rng):
        w = rng.normal(size=(2000,))
        levels = lloyd_levels(w, 8)
        assert (np.diff(levels) >= 0).all()
        assert levels.min() >= w.min() - 1e-9
        assert levels.max() <= w.max() + 1e-9

    def test_lloyd_symmetric_mode(self, rng):
        levels = lloyd_levels(rng.normal(size=(2000,)), 4, symmetric=True)
        np.testing.assert_allclose(levels, -levels[::-1], atol=1e-9)

    def test_lloyd_constant_input(self):
        levels = lloyd_levels(np.full(10, 2.0), 4)
        np.testing.assert_allclose(levels, 2.0)

    def test_lloyd_beats_uniform_on_gaussian(self, rng):
        w = rng.normal(size=(5000,))
        levels = lloyd_levels(w, 8)
        edges = (levels[1:] + levels[:-1]) / 2
        lq = levels[np.searchsorted(edges, w)]
        uniform_grid = np.linspace(w.min(), w.max(), 8)
        ue = (uniform_grid[1:] + uniform_grid[:-1]) / 2
        uq = uniform_grid[np.searchsorted(ue, w)]
        assert ((w - lq) ** 2).mean() < ((w - uq) ** 2).mean()

    def test_quantizer_snaps_to_levels(self, rng):
        q = LQNetsWeightQuantizer()
        q.set_bits(3)
        w = Tensor(rng.normal(size=(500,)))
        out = q(w).data
        assert len(np.unique(out)) <= 8

    def test_refresh_on_bits_change(self, rng):
        q = LQNetsWeightQuantizer()
        q.set_bits(4)
        w = Tensor(rng.normal(size=(200,)))
        q(w)
        levels4 = q._levels.copy()
        q.set_bits(2)
        q(w)
        assert len(q._levels) == 4 and len(levels4) == 16

    def test_gradient_is_straight_through(self, rng):
        q = LQNetsWeightQuantizer()
        q.set_bits(3)
        w = Tensor(rng.normal(size=(50,)), requires_grad=True)
        q(w).sum().backward()
        np.testing.assert_allclose(w.grad, np.ones(50))
