"""The per-step frozen-layer quantized-weight cache.

The cache memoizes each layer's quantized weight tensor per bit width
while the weights are frozen (no-grad evaluation).  It must be
*transparent*: identical forward outputs with the cache on or off, no
interaction with training (grad-enabled forwards bypass it entirely),
and an explicit invalidation contract for the CCQ step lifecycle
(probe -> restore -> win -> collaborate).
"""

import numpy as np
import pytest

from repro import models
from repro.nn.autograd import no_grad
from repro.nn.tensor import Tensor
from repro.quantization import (
    enable_weight_cache,
    invalidate_weight_cache,
    quantize_model,
    quantized_layers,
    set_uniform_bits,
    weight_cache_stats,
)


def small_net(seed=0, policy="pact"):
    net = models.SmallConvNet(width=4, rng=np.random.default_rng(seed))
    return quantize_model(net, policy)


def batch(rng, n=2):
    return Tensor(rng.normal(size=(n, 3, 8, 8)))


class TestTransparency:
    def test_outputs_identical_cache_on_and_off(self, rng):
        x = batch(rng)
        net = small_net()
        set_uniform_bits(net, 4, 4)
        with no_grad():
            reference = net(x).data.copy()

        enable_weight_cache(net, True)
        with no_grad():
            cold = net(x).data.copy()   # populates the cache
            warm = net(x).data.copy()   # served from the cache
        np.testing.assert_array_equal(cold, reference)
        np.testing.assert_array_equal(warm, reference)
        stats = weight_cache_stats(net)
        assert stats["misses"] == 4   # one per layer
        assert stats["hits"] == 4

    def test_bits_change_is_a_distinct_entry(self, rng):
        x = batch(rng)
        net = small_net()
        enable_weight_cache(net, True)
        set_uniform_bits(net, 4, 4)
        with no_grad():
            out4 = net(x).data.copy()
            net(x)
            set_uniform_bits(net, 2, 2)
            out2 = net(x).data.copy()
        assert not np.allclose(out4, out2)
        # Going back to 4 bits hits the existing entry.
        hits_before = weight_cache_stats(net)["hits"]
        set_uniform_bits(net, 4, 4)
        with no_grad():
            again = net(x).data.copy()
        np.testing.assert_array_equal(again, out4)
        assert weight_cache_stats(net)["hits"] == hits_before + 4

    def test_fp_layers_cache_the_passthrough(self, rng):
        """bits=None (float passthrough) is a cacheable key too."""
        x = batch(rng)
        net = small_net()
        enable_weight_cache(net, True)
        with no_grad():
            net(x)
            net(x)
        assert weight_cache_stats(net)["hits"] == 4


class TestTrainingBypass:
    def test_grad_enabled_forward_bypasses_cache(self, rng):
        x = batch(rng)
        net = small_net()
        enable_weight_cache(net, True)
        set_uniform_bits(net, 4, 4)
        net(x)  # grad enabled: no caching at all
        assert weight_cache_stats(net) == {"hits": 0, "misses": 0}

    def test_stats_initializing_quantizer_bypasses_cache(self, rng):
        """LSQ derives its step size on the first forward — caching
        before that initialization would freeze a garbage scale."""
        x = batch(rng)
        net = small_net(policy="lsq")
        enable_weight_cache(net, True)
        set_uniform_bits(net, 4, 4)
        with no_grad():
            net(x)
        # First forward initialized the quantizers; only subsequent
        # forwards may cache.
        assert weight_cache_stats(net)["hits"] == 0
        with no_grad():
            net(x)
            net(x)
        assert weight_cache_stats(net)["hits"] >= 4


class TestInvalidation:
    def test_step_lifecycle_probe_restore_win_collaborate(self, rng):
        """The CCQ step sequence the cache must survive bit-exactly."""
        x = batch(rng)
        net = small_net()
        layers = dict(quantized_layers(net))
        name, probed = next(iter(layers.items()))
        enable_weight_cache(net, True)
        set_uniform_bits(net, 8, 8)

        with no_grad():
            pre = net(x).data.copy()          # pre-probe eval at 8 bits

            # Probe: drop one layer to 4 bits, evaluate, restore.
            probed.w_bits = 4
            probe_out = net(x).data.copy()
            probed.w_bits = 8
            restored = net(x).data.copy()     # must hit the 8-bit entries
            np.testing.assert_array_equal(restored, pre)

            # Win: the probed bits become permanent.  Weights are still
            # frozen, so the probe's 4-bit entry is served again.
            hits_before = weight_cache_stats(net)["hits"]
            probed.w_bits = 4
            won = net(x).data.copy()
            np.testing.assert_array_equal(won, probe_out)
            assert weight_cache_stats(net)["hits"] > hits_before

        # Collaborate: weights move -> the cache must be dropped for
        # the duration (CCQ disables it around recovery training).
        enable_weight_cache(net, False)
        probed.weight.data += 0.1
        with no_grad():
            moved = net(x).data.copy()
        assert not np.array_equal(moved, won)

        # Re-enabling starts cold: fresh quantization of the moved
        # weights, not a stale replay.
        enable_weight_cache(net, True)
        with no_grad():
            reenabled = net(x).data.copy()
        np.testing.assert_array_equal(reenabled, moved)

    def test_invalidate_after_inplace_weight_update(self, rng):
        x = batch(rng)
        net = small_net()
        enable_weight_cache(net, True)
        set_uniform_bits(net, 4, 4)
        with no_grad():
            net(x)
        for _, layer in quantized_layers(net):
            layer.weight.data += 0.05
        invalidate_weight_cache(net)
        with no_grad():
            fresh = net(x).data.copy()

        reference = small_net()
        set_uniform_bits(reference, 4, 4)
        for (_, a), (_, b) in zip(quantized_layers(reference),
                                  quantized_layers(net)):
            a.weight.data[...] = b.weight.data
            a.act_quantizer.alpha.data[...] = b.act_quantizer.alpha.data
        with no_grad():
            expected = reference(x).data
        np.testing.assert_array_equal(fresh, expected)

    def test_disabled_cache_never_populates(self, rng):
        x = batch(rng)
        net = small_net()
        set_uniform_bits(net, 4, 4)
        with no_grad():
            net(x)
            net(x)
        assert weight_cache_stats(net) == {"hits": 0, "misses": 0}
        for _, layer in quantized_layers(net):
            assert layer._wq_cache == {}


class TestStateDictIsolation:
    def test_cache_absent_from_state_dict(self, rng):
        net = small_net()
        enable_weight_cache(net, True)
        set_uniform_bits(net, 4, 4)
        with no_grad():
            net(batch(rng))
        assert not any("wq_cache" in k for k in net.state_dict())
