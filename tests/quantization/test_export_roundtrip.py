"""Property tests for export packing: exact round trips at any width.

Complements ``test_export.py``'s example-based coverage with
hypothesis sweeps over bit widths (including the 1-bit / sub-byte edge
cases), odd channel counts whose payloads don't fall on byte
boundaries, and mixed per-layer precisions — asserting the pack →
unpack round trip is bitwise exact and the size accounting
(``payload_bytes``, ``realized_compression``) matches first
principles.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.quantization import quantize_model, quantized_layers
from repro.quantization.export import pack_model, unpack_into


class OddNet(nn.Module):
    """Channel counts chosen so n_values * index_bits % 8 != 0 often."""

    def __init__(self, rng):
        super().__init__()
        self.conv1 = nn.Conv2d(3, 5, 3, rng=rng)
        self.conv2 = nn.Conv2d(5, 7, 3, rng=rng)
        self.fc = nn.Linear(7, 3, rng=rng)

    def forward(self, x):  # pragma: no cover - packing never runs forward
        raise NotImplementedError


def _quantized_oddnet(seed, policy, bits_per_layer):
    net = OddNet(np.random.default_rng(seed))
    quantize_model(net, policy)
    for (_, layer), w_bits in zip(quantized_layers(net), bits_per_layer):
        layer.w_bits = w_bits
        layer.a_bits = max(2, w_bits)
    return net


@settings(max_examples=25, deadline=None, derandomize=True)
@given(
    policy=st.sampled_from(["dorefa", "pact", "lsq", "wrpn"]),
    bits_per_layer=st.lists(
        st.integers(min_value=1, max_value=8), min_size=3, max_size=3
    ),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_pack_unpack_roundtrip_is_exact(policy, bits_per_layer, seed):
    net = _quantized_oddnet(seed, policy, bits_per_layer)
    packed = pack_model(net)
    for name, layer in quantized_layers(net):
        expected = layer.quantized_weight().data
        np.testing.assert_array_equal(packed.layers[name].unpack(), expected)


@settings(max_examples=25, deadline=None, derandomize=True)
@given(
    policy=st.sampled_from(["dorefa", "pact", "lsq"]),
    bits_per_layer=st.lists(
        st.integers(min_value=1, max_value=8), min_size=3, max_size=3
    ),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_unpack_into_fresh_model(policy, bits_per_layer, seed):
    """Deploy path: pack one model, unpack into an identically-built
    twin, and require the twin's quantized weights to match bitwise."""
    net = _quantized_oddnet(seed, policy, bits_per_layer)
    twin = _quantized_oddnet(seed + 1, policy, bits_per_layer)
    packed = pack_model(net)
    unpack_into(twin, packed)
    for name, layer in quantized_layers(net):
        twin_layer = dict(quantized_layers(twin))[name]
        # the shadow weights now hold the deployed values exactly
        np.testing.assert_array_equal(
            twin_layer.weight.data, packed.layers[name].unpack()
        )
        np.testing.assert_array_equal(
            twin_layer.weight.data, layer.quantized_weight().data
        )


@settings(max_examples=25, deadline=None, derandomize=True)
@given(
    policy=st.sampled_from(["dorefa", "pact", "lsq", "wrpn"]),
    bits_per_layer=st.lists(
        st.integers(min_value=1, max_value=8), min_size=3, max_size=3
    ),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_size_accounting_from_first_principles(policy, bits_per_layer, seed):
    net = _quantized_oddnet(seed, policy, bits_per_layer)
    packed = pack_model(net)
    for name, layer in packed.layers.items():
        n_levels = len(layer.codebook)
        assert layer.index_bits == max(1, math.ceil(math.log2(n_levels)))
        index_bytes = math.ceil(layer.n_values * layer.index_bits / 8)
        # np.packbits pads the last byte, never more
        assert layer.packed_indices.nbytes == index_bytes
        assert layer.payload_bytes == index_bytes + n_levels * 4
    assert packed.payload_bytes == sum(
        layer.payload_bytes for layer in packed.layers.values()
    )
    assert packed.fp32_bytes == sum(
        4 * int(np.prod(layer.shape)) for layer in packed.layers.values()
    )
    assert packed.realized_compression == (
        packed.fp32_bytes / packed.payload_bytes
    )


@settings(max_examples=15, deadline=None, derandomize=True)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_one_bit_layers_pack_one_bit_indices(seed):
    """1-bit DoReFa weights have a 2-level codebook -> 1 index bit,
    so the payload must be ~n/8 bytes plus the tiny codebook."""
    net = _quantized_oddnet(seed, "dorefa", [1, 1, 1])
    packed = pack_model(net)
    for layer in packed.layers.values():
        assert len(layer.codebook) <= 2
        assert layer.index_bits == 1
        assert layer.packed_indices.nbytes == math.ceil(layer.n_values / 8)
