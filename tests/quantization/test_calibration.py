"""Activation calibration pipeline."""

import numpy as np
import pytest

from repro import models
from repro.core import evaluate
from repro.nn.tensor import Tensor
from repro.quantization import quantize_model, quantized_layers
from repro.quantization.calibration import (
    FixedClipActivationQuantizer,
    calibrate_activations,
)


@pytest.fixture()
def quantized_pretrained(pretrained_net):
    net, baseline = pretrained_net
    quantize_model(net, "pact")
    return net, baseline


class TestFixedClip:
    def test_unsigned_range(self, rng):
        q = FixedClipActivationQuantizer(2.0)
        q.set_bits(4)
        out = q(Tensor(rng.normal(size=(200,)) * 5)).data
        assert out.min() >= 0.0 and out.max() <= 2.0 + 1e-9

    def test_signed_range(self, rng):
        q = FixedClipActivationQuantizer(1.5, signed=True)
        q.set_bits(4)
        out = q(Tensor(rng.normal(size=(200,)) * 5)).data
        assert np.abs(out).max() <= 1.5 + 1e-9
        assert (out < 0).any()

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            FixedClipActivationQuantizer(0.0)


@pytest.mark.parametrize("method", ["minmax", "aciq", "kl"])
class TestCalibrate:
    def test_installs_fixed_quantizers(self, method, quantized_pretrained,
                                       tiny_loaders):
        net, _ = quantized_pretrained
        train, _ = tiny_loaders
        clips = calibrate_activations(net, train, bits=8, method=method,
                                      max_batches=2)
        for name, layer in quantized_layers(net):
            assert isinstance(layer.act_quantizer,
                              FixedClipActivationQuantizer)
            assert layer.a_bits == 8
            assert clips[name] > 0

    def test_first_layer_signed(self, method, quantized_pretrained,
                                tiny_loaders):
        net, _ = quantized_pretrained
        train, _ = tiny_loaders
        calibrate_activations(net, train, bits=8, method=method,
                              max_batches=1)
        layers = quantized_layers(net)
        assert layers[0][1].act_quantizer.signed is True
        assert layers[1][1].act_quantizer.signed is False

    def test_8bit_calibration_near_lossless(self, method,
                                            quantized_pretrained,
                                            tiny_loaders):
        net, baseline = quantized_pretrained
        train, val = tiny_loaders
        before = evaluate(net, val).accuracy
        calibrate_activations(net, train, bits=8, method=method,
                              max_batches=2)
        after = evaluate(net, val).accuracy
        assert after >= before - 0.05


class TestCalibrationEdgeCases:
    def test_unquantized_model_rejected(self, tiny_loaders):
        train, _ = tiny_loaders
        net = models.SmallConvNet(width=4)
        with pytest.raises(ValueError):
            calibrate_activations(net, train, bits=8)

    def test_original_quantizers_restored_on_error(self,
                                                   quantized_pretrained):
        net, _ = quantized_pretrained
        layers = quantized_layers(net)
        originals = [l.act_quantizer for _, l in layers]

        class Boom:
            def __iter__(self):
                raise RuntimeError("loader exploded")

        with pytest.raises(RuntimeError, match="loader exploded"):
            calibrate_activations(net, Boom(), bits=8)
        for (_, layer), original in zip(layers, originals):
            assert layer.act_quantizer is original

    def test_kl_clips_tighter_than_minmax(self, quantized_pretrained,
                                          tiny_loaders):
        net, _ = quantized_pretrained
        train, _ = tiny_loaders
        kl = calibrate_activations(net, train, bits=4, method="kl",
                                   max_batches=2)
        net2, _ = quantized_pretrained, None
        # Reuse same net: re-calibrate with minmax.
        mm = calibrate_activations(net, train, bits=4, method="minmax",
                                   max_batches=2)
        # KL should clip at or below the raw maxima on average.
        mean_kl = np.mean(list(kl.values()))
        mean_mm = np.mean(list(mm.values()))
        assert mean_kl <= mean_mm + 1e-6
