"""Cross-policy property tests: invariants every policy must satisfy."""

import numpy as np
import pytest

from repro import models
from repro.nn import functional as F
from repro.nn.tensor import Tensor
from repro.quantization import (
    available_policies,
    get_policy,
    quantize_model,
    quantized_layers,
    set_uniform_bits,
)

ALL_POLICIES = sorted(
    p for p in available_policies() if p != "custom_test"
)


@pytest.fixture()
def tiny_net():
    def make(seed=0):
        return models.SmallConvNet(width=4, rng=np.random.default_rng(seed))

    return make


@pytest.mark.parametrize("policy", ALL_POLICIES)
class TestPolicyInvariants:
    def test_weight_quantizer_reduces_levels(self, policy, rng):
        q = get_policy(policy).make_weight_quantizer()
        q.set_bits(2)
        w = Tensor(rng.normal(size=(1000,)))
        out = q(w).data
        assert len(np.unique(out)) <= 4 + 1  # grid + possible zero

    def test_weight_quantizer_idempotent_values(self, policy, rng):
        # Quantizing already-quantized values must not expand the codebook.
        q = get_policy(policy).make_weight_quantizer()
        q.set_bits(3)
        w = Tensor(rng.normal(size=(500,)))
        once = q(w).data
        twice = q(Tensor(once)).data
        assert len(np.unique(twice)) <= len(np.unique(once)) + 1

    def test_high_bits_preserve_ordering(self, policy, rng):
        q = get_policy(policy).make_weight_quantizer()
        q.set_bits(8)
        w = np.sort(rng.normal(size=(200,)))
        out = q(Tensor(w)).data
        assert (np.diff(out) >= -1e-9).all()

    def test_act_quantizer_finite(self, policy, rng):
        q = get_policy(policy).make_act_quantizer(False)
        q.set_bits(3)
        x = Tensor(rng.normal(size=(200,)) * 10)
        assert np.isfinite(q(x).data).all()

    def test_signed_act_quantizer_finite(self, policy, rng):
        q = get_policy(policy).make_act_quantizer(True)
        q.set_bits(3)
        x = Tensor(rng.normal(size=(200,)) * 3)
        out = q(x).data
        assert np.isfinite(out).all()

    def test_gradients_finite_end_to_end(self, policy, tiny_net, rng):
        net = quantize_model(tiny_net(), policy)
        set_uniform_bits(net, 2, 2)
        x = Tensor(rng.normal(size=(4, 3, 8, 8)))
        y = rng.integers(0, 10, size=4)
        loss = F.cross_entropy(net(x), y)
        loss.backward()
        for _, layer in quantized_layers(net):
            assert np.isfinite(layer.weight.grad).all()

    def test_more_bits_lower_weight_error(self, policy, rng):
        q = get_policy(policy).make_weight_quantizer()
        w = rng.normal(size=(2000,)) * 0.5
        errors = []
        for bits in (2, 4, 8):
            q.set_bits(bits)
            out = q(Tensor(w)).data
            errors.append(((w - out) ** 2).mean())
        assert errors[2] <= errors[0] + 1e-12

    def test_bit_reconfig_changes_output(self, policy, rng):
        q = get_policy(policy).make_weight_quantizer()
        w = Tensor(rng.normal(size=(500,)))
        q.set_bits(8)
        out8 = q(w).data.copy()
        q.set_bits(2)
        out2 = q(w).data
        assert not np.allclose(out8, out2)
