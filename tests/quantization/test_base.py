"""Fake-quant core invariants (including hypothesis property tests)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.nn.tensor import Tensor
from repro.quantization.base import (
    IdentityQuantizer,
    WeightQuantizer,
    fake_quantize_symmetric,
    fake_quantize_unsigned,
    n_levels,
    quantization_error,
    quantize_unit_ste,
)

finite_arrays = arrays(
    np.float64, st.integers(1, 40).map(lambda n: (n,)),
    elements=st.floats(-100, 100),
)


class TestNLevels:
    @pytest.mark.parametrize("bits,expected", [(1, 1), (2, 3), (4, 15), (8, 255)])
    def test_unsigned(self, bits, expected):
        assert n_levels(bits) == expected

    @pytest.mark.parametrize("bits,expected", [(1, 1), (2, 1), (3, 3), (8, 127)])
    def test_signed(self, bits, expected):
        assert n_levels(bits, signed=True) == expected

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            n_levels(0)


class TestUnitQuantizer:
    @given(finite_arrays, st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_idempotent(self, data, bits):
        x = Tensor(np.clip(data, 0, 1))
        once = quantize_unit_ste(x, bits).data
        twice = quantize_unit_ste(Tensor(once), bits).data
        np.testing.assert_allclose(once, twice, atol=1e-12)

    @given(finite_arrays, st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_level_count_bounded(self, data, bits):
        x = Tensor(np.clip(np.abs(data) / 100, 0, 1))
        out = quantize_unit_ste(x, bits).data
        assert len(np.unique(out)) <= 2 ** bits

    @given(finite_arrays, st.integers(2, 8))
    @settings(max_examples=50, deadline=None)
    def test_error_bounded_by_half_step(self, data, bits):
        unit = np.clip(np.abs(data) / 100, 0, 1)
        out = quantize_unit_ste(Tensor(unit), bits).data
        step = 1.0 / (2 ** bits - 1)
        assert np.abs(out - unit).max() <= step / 2 + 1e-12

    def test_monotone(self):
        x = np.linspace(0, 1, 101)
        out = quantize_unit_ste(Tensor(x), 3).data
        assert (np.diff(out) >= 0).all()

    def test_more_bits_less_error(self, rng):
        x = rng.uniform(0, 1, size=500)
        errors = [
            quantization_error(x, quantize_unit_ste(Tensor(x), b).data)
            for b in (2, 4, 8)
        ]
        assert errors[0] > errors[1] > errors[2]


class TestSymmetricQuantizer:
    @given(finite_arrays, st.integers(2, 8),
           st.floats(0.1, 50.0))
    @settings(max_examples=50, deadline=None)
    def test_output_in_clip_range(self, data, bits, alpha):
        out = fake_quantize_symmetric(Tensor(data), bits, alpha).data
        assert (np.abs(out) <= alpha + 1e-9).all()

    @given(finite_arrays, st.integers(2, 8), st.floats(0.1, 50.0))
    @settings(max_examples=50, deadline=None)
    def test_symmetric_in_sign(self, data, bits, alpha):
        pos = fake_quantize_symmetric(Tensor(data), bits, alpha).data
        neg = fake_quantize_symmetric(Tensor(-data), bits, alpha).data
        np.testing.assert_allclose(pos, -neg, atol=1e-12)

    @given(finite_arrays, st.integers(2, 8), st.floats(0.1, 50.0))
    @settings(max_examples=50, deadline=None)
    def test_zero_maps_to_zero(self, data, bits, alpha):
        out = fake_quantize_symmetric(Tensor(np.zeros(3)), bits, alpha).data
        np.testing.assert_allclose(out, 0.0)

    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(ValueError):
            fake_quantize_symmetric(Tensor([1.0]), 4, 0.0)

    def test_grid_spacing(self):
        out = fake_quantize_symmetric(
            Tensor(np.linspace(-1, 1, 1000)), 3, 1.0
        ).data
        levels = np.unique(out)
        # signed 3-bit grid: {0, ±1/3, ±2/3, ±1}
        np.testing.assert_allclose(np.diff(levels), 1 / 3, atol=1e-12)


class TestUnsignedQuantizer:
    def test_clips_negatives_to_zero(self):
        out = fake_quantize_unsigned(Tensor([-5.0, 0.5]), 4, 1.0).data
        assert out[0] == 0.0

    def test_alpha_is_max(self):
        out = fake_quantize_unsigned(Tensor([100.0]), 4, 2.0).data
        assert out[0] == pytest.approx(2.0)

    def test_rejects_nonpositive_alpha(self):
        with pytest.raises(ValueError):
            fake_quantize_unsigned(Tensor([1.0]), 4, -1.0)


class TestQuantizerBase:
    def test_none_bits_is_identity(self, rng):
        class Doubler(WeightQuantizer):
            def quantize(self, w, bits):
                return w * 2

        q = Doubler()
        x = Tensor(rng.normal(size=(3,)))
        assert (q(x).data == x.data).all()
        q.set_bits(4)
        assert (q(x).data == 2 * x.data).all()

    def test_set_bits_validates(self):
        q = IdentityQuantizer()
        with pytest.raises(ValueError):
            q.set_bits(0)

    def test_bits_change_hook_fires(self):
        events = []

        class Spy(WeightQuantizer):
            def on_bits_change(self, previous, new):
                events.append((previous, new))

            def quantize(self, w, bits):
                return w

        q = Spy()
        q.set_bits(8)
        q.set_bits(8)  # no change, no event
        q.set_bits(4)
        assert events == [(None, 8), (8, 4)]

    def test_identity_quantizer(self, rng):
        q = IdentityQuantizer()
        q.set_bits(2)
        x = Tensor(rng.normal(size=(4,)))
        assert (q(x).data == x.data).all()

    def test_quantization_error_definition(self):
        assert quantization_error(np.array([1.0, 2.0]), np.array([1.0, 1.0])) == 1.0
