"""Layer-sensitivity scan: which layers can afford low precision?

The observation that "different layers have distinct representational
capabilities" motivates mixed precision.  This example makes that
concrete: probe every layer of a pretrained network at every ladder level
(exactly the feed-forward probes CCQ's competition uses) and print a
sensitivity map — the layers whose low-bit probes barely move the
validation loss are the ones CCQ ends up quantizing first.

Run:
    python examples/layer_sensitivity.py
"""

import numpy as np

from repro import models
from repro.baselines import PretrainConfig, pretrain
from repro.core import BitLadder, scan_layer_sensitivity
from repro.datasets import make_synthetic_cifar10
from repro.nn.data import DataLoader
from repro.quantization import quantize_model
from repro.utils import sparkline


def main() -> None:
    splits = make_synthetic_cifar10(
        n_train=600, n_val=200, n_test=200, image_size=16, augment=False
    )
    train = DataLoader(splits.train, batch_size=64, shuffle=True, seed=0)
    val = DataLoader(splits.val, batch_size=128)

    net = models.resnet20(width_mult=0.25, rng=np.random.default_rng(0))
    print("pretraining ResNet-20 (width x0.25)...")
    base = pretrain(net, train, val, PretrainConfig(epochs=14, lr=0.05))
    print(f"float baseline: {base.baseline_accuracy:.3f}\n")

    quantize_model(net, "pact")
    ladder = BitLadder((8, 6, 4, 3, 2))
    print(f"probing every layer at {tuple(ladder)} bits "
          "(pure feed-forward, no training)...")
    report = scan_layer_sensitivity(net, val, ladder=ladder)

    print(f"\n{'layer':<24} {'bits ' + str(tuple(ladder)):<22} "
          f"{'acc@2b':>7} {'loss-delta@2b':>14}")
    deltas = dict(report.ranking(2))
    for name, probes in report.by_layer().items():
        accs = [p.accuracy for p in sorted(probes, key=lambda p: -p.bits)]
        acc2 = next(p.accuracy for p in probes if p.bits == 2)
        print(f"{name:<24} {sparkline(accs):<22} {acc2:7.3f} "
              f"{deltas[name]:14.4f}")

    print("\nmost sensitive at 2 bits (CCQ quantizes these LAST):")
    for name, delta in report.ranking(2)[:3]:
        print(f"  {name:<24} loss +{delta:.4f}")
    print("most robust at 2 bits (CCQ quantizes these FIRST):")
    for name in report.most_robust(2, k=3):
        print(f"  {name}")


if __name__ == "__main__":
    main()
