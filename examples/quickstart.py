"""Quickstart: quantize a small convnet with CCQ in ~a minute.

Pipeline: pretrain a float network on the synthetic CIFAR10 stand-in,
then let the competitive-collaborative framework gradually walk every
layer down the bit ladder while recovering accuracy between steps.

Run:
    python examples/quickstart.py [--scale smoke|bench]
"""

import argparse

import numpy as np

from repro import models
from repro.baselines import PretrainConfig, pretrain
from repro.core import (
    BitLadder,
    CCQConfig,
    CCQQuantizer,
    LambdaSchedule,
    RecoveryConfig,
)
from repro.datasets import make_synthetic_cifar10
from repro.nn.data import DataLoader


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("smoke", "bench"), default="smoke")
    args = parser.parse_args()
    n_train = 400 if args.scale == "smoke" else 1200
    image = 12 if args.scale == "smoke" else 16

    splits = make_synthetic_cifar10(
        n_train=n_train, n_val=200, n_test=200, image_size=image, augment=False
    )
    train = DataLoader(splits.train, batch_size=64, shuffle=True, seed=0)
    val = DataLoader(splits.val, batch_size=128)

    print("== 1. pretrain a float baseline ==")
    net = models.SmallConvNet(width=8, rng=np.random.default_rng(0))
    base = pretrain(net, train, val, PretrainConfig(epochs=8, lr=0.05))
    print(f"float baseline accuracy: {base.baseline_accuracy:.3f}")

    print("\n== 2. run CCQ (policy: PACT, ladder 8->4->2) ==")
    config = CCQConfig(
        ladder=BitLadder((8, 4, 2)),
        probes_per_step=4,
        probe_batches=1,
        lambda_schedule=LambdaSchedule(start=0.7, end=0.2, decay_steps=8),
        recovery=RecoveryConfig(mode="adaptive", max_epochs=4, slack=0.02),
        lr=0.02,
        target_compression=8.0,
        seed=0,
    )
    ccq = CCQQuantizer(net, train, val, config=config, policy="pact")
    result = ccq.run()

    print(f"\nsteps taken: {len(result.records)}")
    for rec in result.records:
        print(
            f"  step {rec.step}: {rec.layer_name} "
            f"{rec.from_bits}b -> {rec.to_bits}b | "
            f"valley {rec.post_quant_accuracy:.3f} -> "
            f"peak {rec.recovered_accuracy:.3f} "
            f"({rec.recovery.epochs_used} recovery epochs)"
        )

    print("\n== 3. results ==")
    print(f"final accuracy:    {result.final_eval.accuracy:.3f} "
          f"(baseline {base.baseline_accuracy:.3f})")
    print(f"model compression: {result.compression:.2f}x")
    print("per-layer bits (weights/activations):")
    for name, (w_bits, a_bits) in result.bit_config.items():
        print(f"  {name:<10} {w_bits}/{a_bits}")


if __name__ == "__main__":
    main()
