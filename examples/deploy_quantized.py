"""Deployment pipeline: CCQ -> packed integer checkpoint -> int inference.

After CCQ produces a mixed-precision network, shipping it to an edge
target means (1) storing the weights as packed integer codes and (2)
executing with integer MACs.  This example validates both halves:

* ``pack_model`` converts every quantized layer to a codebook + bit-packed
  indices and reports the *realized* (bytes-on-disk) compression next to
  the accounting number;
* ``integer_conv2d`` re-executes a quantized layer entirely in int64
  arithmetic and is checked against the fake-quant float path the model
  trained with.

Run:
    python examples/deploy_quantized.py
"""

import numpy as np

from repro import models
from repro.baselines import PretrainConfig, pretrain
from repro.core import (
    BitLadder,
    CCQConfig,
    CCQQuantizer,
    RecoveryConfig,
    model_size_report,
)
from repro.datasets import make_synthetic_cifar10
from repro.nn import functional as F
from repro.nn.data import DataLoader
from repro.nn.tensor import Tensor
from repro.quantization import (
    extract_affine_code,
    integer_conv2d,
    pack_model,
    quantized_layers,
)


def main() -> None:
    splits = make_synthetic_cifar10(
        n_train=600, n_val=200, n_test=200, image_size=12, augment=False
    )
    train = DataLoader(splits.train, batch_size=64, shuffle=True, seed=0)
    val = DataLoader(splits.val, batch_size=128)

    net = models.SmallConvNet(width=8, rng=np.random.default_rng(0))
    print("pretraining + CCQ (PACT, ladder 8->4->3)...")
    pretrain(net, train, val, PretrainConfig(epochs=8, lr=0.05))
    ccq = CCQQuantizer(
        net, train, val,
        config=CCQConfig(
            ladder=BitLadder((8, 4, 3)),
            probes_per_step=3, probe_batches=1,
            recovery=RecoveryConfig(mode="adaptive", max_epochs=3, slack=0.02),
            lr=0.02, target_compression=8.0, seed=0,
        ),
        policy="pact",
    )
    result = ccq.run()
    print(f"quantized accuracy {result.final_eval.accuracy:.3f}, "
          f"accounting compression {result.compression:.2f}x")

    print("\n== packing to integer storage ==")
    packed = pack_model(net)
    report = model_size_report(net)
    print(f"{'layer':<8} {'bits':>5} {'codebook':>9} {'payload':>10}")
    for name, layer in packed.layers.items():
        print(f"{name:<8} {dict(quantized_layers(net))[name].w_bits:>4}b "
              f"{len(layer.codebook):>9} {layer.payload_bytes:>9}B")
    print(f"fp32 size      {packed.fp32_bytes:>8} B")
    print(f"packed size    {packed.payload_bytes:>8} B")
    print(f"realized compression {packed.realized_compression:.2f}x "
          f"(accounting said {report.compression:.2f}x)")

    print("\n== integer-arithmetic execution check ==")
    _, conv = quantized_layers(net)[1]
    x = Tensor(np.abs(np.random.default_rng(3).normal(
        size=(2, conv.in_channels, 6, 6))))
    xq = conv.act_quantizer(x).data
    wq = conv.weight_quantizer(conv.weight).data
    float_out = F.conv2d(Tensor(xq), Tensor(wq),
                         stride=conv.stride, padding=conv.padding).data
    int_out = integer_conv2d(
        extract_affine_code(xq), extract_affine_code(wq),
        stride=conv.stride, padding=conv.padding,
    )
    max_err = np.abs(float_out - int_out).max()
    print(f"max |float fake-quant − int64 pipeline| = {max_err:.2e}")
    assert max_err < 1e-8
    print("integer pipeline matches the QAT simulation exactly.")


if __name__ == "__main__":
    main()
