"""Power analysis: why quantizing the first/last layers matters (Fig. 5).

Uses the bit-width-aware MAC energy model to compare, at iso-throughput,
a ResNet in four deployments: unquantized, partially quantized with
full-precision first/last layers (fp-4b-fp, fp-2b-fp), and fully
quantized mixed precision.  The full-precision edge layers — despite
holding few parameters — dominate the power budget of the partially
quantized deployments.

Run:
    python examples/power_analysis.py [--network resnet20|resnet18|resnet50]
"""

import argparse

import numpy as np

from repro import models
from repro.hardware import (
    NODE_32NM_SYNTH,
    mac_energy_pj,
    power_of_config,
    trace_layer_macs,
)

NETWORKS = {
    "resnet20": (lambda: models.resnet20(rng=np.random.default_rng(0)),
                 (3, 32, 32), (6, 2)),
    "resnet18": (lambda: models.resnet18(num_classes=1000,
                                         rng=np.random.default_rng(0)),
                 (3, 64, 64), (6, 6)),
    "resnet50": (lambda: models.resnet50(num_classes=1000,
                                         rng=np.random.default_rng(0)),
                 (3, 64, 64), (8, 3)),
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--network", choices=sorted(NETWORKS), default="resnet20")
    parser.add_argument("--fps", type=float, default=30.0)
    args = parser.parse_args()

    make_model, input_shape, (first, last) = NETWORKS[args.network]
    model = make_model()
    entries = trace_layer_macs(model, input_shape)
    n = len(entries)
    total_macs = sum(e.macs for e in entries)
    print(f"{args.network}: {n} compute layers, {total_macs/1e6:.1f}M MACs "
          f"per inference at {input_shape[1]}x{input_shape[2]}\n")

    print("MAC energy at 32nm (synthesized-unit calibration):")
    for bits in (2, 3, 4, 6, 8, None):
        label = "fp32" if bits is None else f"int{bits}"
        print(f"  {label:>5}: {mac_energy_pj(bits, bits, NODE_32NM_SYNTH):7.3f} pJ")

    configs = {
        "unquantized": [(None, None)] * n,
        "fp-4b-fp": [(None, None)] + [(4, 4)] * (n - 2) + [(None, None)],
        "fp-2b-fp": [(None, None)] + [(2, 2)] * (n - 2) + [(None, None)],
        f"fully-quantized ({first}b/{last}b edges)": (
            [(first, first)] + [(2, 2)] * (n - 2) + [(last, last)]
        ),
    }
    print(f"\nnetwork power at {args.fps:.0f} fps:")
    for name, bit_config in configs.items():
        report = power_of_config(
            model, input_shape, bit_config, fps=args.fps, node=NODE_32NM_SYNTH
        )
        print(
            f"  {name:<34} total {report.total_watts*1e3:9.3f} mW | "
            f"first+last {report.edge_watts*1e3:9.3f} mW | "
            f"middle {report.middle_watts*1e3:8.3f} mW | "
            f"edge/middle {report.edge_to_middle_ratio:6.1f}x"
        )

    print(
        "\nThe fp first/last pair of the partially quantized deployments "
        "draws several times the power of the whole quantized middle — "
        "CCQ's ability to quantize those layers (gradually, without the "
        "accuracy cliff) removes that bottleneck."
    )


if __name__ == "__main__":
    main()
