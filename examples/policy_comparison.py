"""Policy-agnostic framework demo: one-shot vs gradual for three policies.

A miniature of the paper's Table I: force CCQ to reach the classic
``fp-3b-fp`` bit pattern (full-precision first/last layers, 3-bit middle)
gradually, and compare against jumping there in one shot — for DoReFa,
WRPN and PACT.  The gradual path should match or beat one-shot for every
policy, demonstrating that CCQ improves *any* underlying policy.

Run:
    python examples/policy_comparison.py [--scale smoke|bench]
"""

import argparse

import numpy as np

from repro import models
from repro.baselines import (
    OneShotConfig,
    PretrainConfig,
    edge_aware_config,
    one_shot_quantize,
    pretrain,
)
from repro.core import BitLadder, CCQConfig, CCQQuantizer, RecoveryConfig
from repro.datasets import make_synthetic_cifar10
from repro.nn.data import DataLoader
from repro.quantization import quantize_model, quantized_layers

POLICIES = ("dorefa", "wrpn", "pact")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("smoke", "bench"), default="smoke")
    args = parser.parse_args()
    n_train = 400 if args.scale == "smoke" else 1200
    image = 12 if args.scale == "smoke" else 16
    epochs = 6 if args.scale == "smoke" else 10

    splits = make_synthetic_cifar10(
        n_train=n_train, n_val=200, n_test=200, image_size=image, augment=False
    )
    train = DataLoader(splits.train, batch_size=64, shuffle=True, seed=0)
    val = DataLoader(splits.val, batch_size=128)

    base_net = models.SmallConvNet(width=8, rng=np.random.default_rng(0))
    base = pretrain(base_net, train, val, PretrainConfig(epochs=epochs, lr=0.05))
    state = base_net.state_dict()
    print(f"float baseline: {base.baseline_accuracy:.3f}\n")

    print(f"{'policy':<8} {'one-shot':>9} {'gradual':>9}")
    for policy in POLICIES:
        # One-shot jump to fp-3b-fp.
        net_os = models.SmallConvNet(width=8, rng=np.random.default_rng(0))
        net_os.load_state_dict(state)
        quantize_model(net_os, policy)
        target = edge_aware_config(net_os, middle_bits=3)
        oneshot = one_shot_quantize(
            net_os, train, val, target,
            config=OneShotConfig(epochs=4, lr=0.02),
        )

        # Gradual walk to the identical configuration via CCQ.
        net_gr = models.SmallConvNet(width=8, rng=np.random.default_rng(0))
        net_gr.load_state_dict(state)
        quantize_model(net_gr, policy)
        names = [n for n, _ in quantized_layers(net_gr)]
        target_bits = {names[0]: None, names[-1]: None}
        for mid in names[1:-1]:
            target_bits[mid] = 3
        config = CCQConfig(
            ladder=BitLadder((8, 6, 4, 3)),
            probes_per_step=3,
            probe_batches=1,
            recovery=RecoveryConfig(mode="adaptive", max_epochs=3, slack=0.02),
            lr=0.02,
            seed=0,
        )
        ccq = CCQQuantizer(
            net_gr, train, val, config=config, target_config=target_bits
        )
        gradual = ccq.run()

        print(
            f"{policy:<8} {oneshot.final.accuracy:9.3f} "
            f"{gradual.final_eval.accuracy:9.3f}"
        )


if __name__ == "__main__":
    main()
