"""Full pipeline on ResNet-20: pretrain -> CCQ -> compression + power report.

The complete workflow the paper's Table II rows correspond to, at a
CPU-friendly scale: train a float ResNet-20 on the synthetic CIFAR10
stand-in, run CCQ with the memory-aware lambda schedule to a target
compression, then report the learned per-layer precision, the model-size
reduction and the MAC power of the result against the float network.

Run:
    python examples/mixed_precision_resnet.py [--scale smoke|bench]
                                              [--target-compression 9.0]
"""

import argparse

import numpy as np

from repro import models
from repro.baselines import PretrainConfig, pretrain
from repro.core import (
    CCQConfig,
    CCQQuantizer,
    DEFAULT_LADDER,
    LambdaSchedule,
    RecoveryConfig,
    model_size_report,
)
from repro.datasets import make_synthetic_cifar10
from repro.hardware import NODE_32NM_SYNTH, network_power, power_of_config
from repro.nn.data import DataLoader
from repro.quantization import quantized_layers


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=("smoke", "bench"), default="smoke")
    parser.add_argument("--target-compression", type=float, default=9.0)
    args = parser.parse_args()
    if args.scale == "smoke":
        n_train, image, width, epochs = 400, 12, 0.25, 5
    else:
        n_train, image, width, epochs = 1200, 16, 0.5, 10

    splits = make_synthetic_cifar10(
        n_train=n_train, n_val=250, n_test=250, image_size=image, augment=False
    )
    train = DataLoader(splits.train, batch_size=64, shuffle=True, seed=0)
    val = DataLoader(splits.val, batch_size=128)

    net = models.resnet20(width_mult=width, rng=np.random.default_rng(0))
    print(f"pretraining ResNet-20 (width x{width}, {image}px)...")
    base = pretrain(net, train, val, PretrainConfig(epochs=epochs, lr=0.05))
    print(f"float baseline: {base.baseline_accuracy:.3f}")

    config = CCQConfig(
        ladder=DEFAULT_LADDER,
        probes_per_step=4,
        probe_batches=1,
        lambda_schedule=LambdaSchedule(start=0.7, end=0.2, decay_steps=15),
        recovery=RecoveryConfig(mode="adaptive", max_epochs=4, slack=0.01),
        lr=0.02,
        target_compression=args.target_compression,
        max_steps=40,
        seed=0,
    )
    print(f"\nrunning CCQ to {args.target_compression:.1f}x compression...")
    ccq = CCQQuantizer(net, train, val, config=config, policy="pact")
    result = ccq.run()

    print(f"\nCCQ finished in {len(result.records)} quantization steps "
          f"({result.probe_forward_passes} competition probes)")
    print(f"quantized accuracy: {result.final_eval.accuracy:.3f} "
          f"(degradation {base.baseline_accuracy - result.final_eval.accuracy:+.3f})")

    report = model_size_report(net)
    print(f"model compression:  {report.compression:.2f}x "
          f"({report.baseline_bits/8e3:.1f} KB -> {report.total_bits/8e3:.1f} KB)")

    print("\nlearned per-layer precision:")
    from repro.nn.summary import format_summary, summarize

    print(format_summary(summarize(net, (3, image, image))))

    input_shape = (3, image, image)
    quant_power = network_power(net, input_shape, node=NODE_32NM_SYNTH)
    fp_power = power_of_config(
        net, input_shape,
        [(None, None)] * len(quantized_layers(net)),
        node=NODE_32NM_SYNTH,
    )
    print(f"\nMAC power at 30 fps (32nm synth model):")
    print(f"  float:     {fp_power.total_watts*1e3:9.3f} mW")
    print(f"  quantized: {quant_power.total_watts*1e3:9.3f} mW "
          f"({fp_power.total_watts/quant_power.total_watts:.1f}x less)")


if __name__ == "__main__":
    main()
