"""Static (post-training) quantization with ACIQ and KL calibration.

The paper's related-work section contrasts CCQ against *static*
quantization — take a trained model, pick clipping thresholds from the
weight/activation statistics, and quantize without retraining.  This
example demonstrates both calibrators on a pretrained network and shows
why the accuracy-driven, fine-tuned approaches win at low precision:

  * max-calibration (clip at the observed maximum),
  * ACIQ (analytic clip assuming a Gaussian/Laplace fit),
  * KL divergence calibration (TensorRT-style histogram search),
  * and PACT quantization-aware fine-tuning as the reference point.

Run:
    python examples/post_training_quantization.py
"""

import numpy as np

from repro import models
from repro.baselines import PretrainConfig, pretrain
from repro.core import evaluate, make_sgd, train_epoch
from repro.datasets import make_synthetic_cifar10
from repro.nn.data import DataLoader
from repro.quantization import (
    HistogramObserver,
    aciq_clip,
    kl_divergence_clip,
    quantize_array_symmetric,
    quantize_model,
    quantized_layers,
    set_uniform_bits,
)

BITS = 3


def apply_static(model, clip_fn) -> None:
    """Overwrite every conv/linear weight with its statically quantized copy."""
    for name, layer in quantized_layers(model):
        w = layer.weight.data
        alpha = clip_fn(w)
        layer.weight.data[...] = quantize_array_symmetric(w, BITS, alpha)


def main() -> None:
    splits = make_synthetic_cifar10(
        n_train=600, n_val=200, n_test=200, image_size=12, augment=False
    )
    train = DataLoader(splits.train, batch_size=64, shuffle=True, seed=0)
    val = DataLoader(splits.val, batch_size=128)

    net = models.SmallConvNet(width=8, rng=np.random.default_rng(0))
    base = pretrain(net, train, val, PretrainConfig(epochs=8, lr=0.05))
    state = net.state_dict()
    print(f"float baseline: {base.baseline_accuracy:.3f}\n")
    print(f"{'method':<22} {'top-1':>7}")

    def fresh():
        m = models.SmallConvNet(width=8, rng=np.random.default_rng(0))
        m.load_state_dict(state)
        quantize_model(m, "pact")  # gives us the layer handles
        return m

    # -- static: max calibration ------------------------------------------------
    m = fresh()
    apply_static(m, lambda w: float(np.abs(w).max()))
    print(f"{'static max-clip':<22} {evaluate(m, val).accuracy:7.3f}")

    # -- static: ACIQ ---------------------------------------------------------------
    m = fresh()
    apply_static(m, lambda w: aciq_clip(w, bits=BITS, dist="auto"))
    print(f"{'static ACIQ':<22} {evaluate(m, val).accuracy:7.3f}")

    # -- static: KL calibration --------------------------------------------------------
    def kl_clip(w):
        obs = HistogramObserver(n_bins=512)
        obs.observe(w)
        counts, max_abs = obs.histogram()
        return kl_divergence_clip(counts, max_abs, bits=BITS)

    m = fresh()
    apply_static(m, kl_clip)
    print(f"{'static KL (TensorRT)':<22} {evaluate(m, val).accuracy:7.3f}")

    # -- QAT reference: PACT fake-quant + fine-tuning (weights only, to
    # match the static methods above, which also leave activations fp) ---------
    m = fresh()
    set_uniform_bits(m, BITS, None)
    opt = make_sgd(m, lr=0.02)
    for _ in range(3):
        train_epoch(m, train, opt)
    print(f"{'PACT QAT (3 epochs)':<22} {evaluate(m, val).accuracy:7.3f}")

    print(
        "\nStatic calibration limits the damage (ACIQ/KL beat naive "
        "max-clipping) but cannot reach the accuracy of quantization-aware "
        "fine-tuning — the motivation for accuracy-driven frameworks "
        "like CCQ."
    )


if __name__ == "__main__":
    main()
