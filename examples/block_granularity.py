"""Block-granularity CCQ: compete at residual-block level.

The framework treats "different parts of the model (e.g., layers)" as the
competing experts.  On deep networks, per-layer competition means many
quantization steps; grouping each residual block into one expert (the
granularity HAWQ assigns precision at) reaches the same compression in
fewer, chunkier steps.  This example runs both granularities side by side
on a ResNet-20.

Run:
    python examples/block_granularity.py
"""

import numpy as np

from repro import models
from repro.baselines import PretrainConfig, pretrain
from repro.core import (
    CCQConfig,
    CCQQuantizer,
    DEFAULT_LADDER,
    LambdaSchedule,
    RecoveryConfig,
    residual_block_groups,
)
from repro.datasets import make_synthetic_cifar10
from repro.nn.data import DataLoader
from repro.quantization import quantize_model


def run(state, train, val, use_blocks: bool):
    net = models.resnet20(width_mult=0.25, rng=np.random.default_rng(0))
    net.load_state_dict(state)
    quantize_model(net, "pact")
    groups = residual_block_groups(net) if use_blocks else None
    ccq = CCQQuantizer(
        net, train, val,
        config=CCQConfig(
            ladder=DEFAULT_LADDER,
            probes_per_step=4, probe_batches=1,
            lambda_schedule=LambdaSchedule(start=0.7, end=0.2, decay_steps=12),
            recovery=RecoveryConfig(mode="adaptive", max_epochs=3, slack=0.015),
            lr=0.02, target_compression=9.0, max_steps=40, seed=0,
        ),
        groups=groups,
    )
    result = ccq.run()
    return ccq, result


def main() -> None:
    splits = make_synthetic_cifar10(
        n_train=600, n_val=200, n_test=200, image_size=16, augment=False
    )
    train = DataLoader(splits.train, batch_size=64, shuffle=True, seed=0)
    val = DataLoader(splits.val, batch_size=128)

    base_net = models.resnet20(width_mult=0.25, rng=np.random.default_rng(0))
    print("pretraining ResNet-20 (width x0.25)...")
    base = pretrain(base_net, train, val, PretrainConfig(epochs=14, lr=0.05))
    state = base_net.state_dict()
    print(f"float baseline: {base.baseline_accuracy:.3f}\n")

    print(f"{'granularity':<12} {'experts':>8} {'steps':>6} {'probes':>7} "
          f"{'compr':>7} {'acc':>7}")
    for use_blocks in (False, True):
        ccq, result = run(state, train, val, use_blocks)
        label = "block" if use_blocks else "layer"
        print(
            f"{label:<12} {len(ccq.experts):>8} {len(result.records):>6} "
            f"{result.probe_forward_passes:>7} {result.compression:6.2f}x "
            f"{result.final_eval.accuracy:7.3f}"
        )
        if use_blocks:
            print("\nblock-level decisions taken:")
            for rec in result.records:
                print(f"  {rec.layer_name:<12} -> {rec.to_bits}b "
                      f"(recovered to {rec.recovered_accuracy:.3f})")


if __name__ == "__main__":
    main()
