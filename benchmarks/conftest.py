"""Shared benchmark fixtures: cached tasks and result recording.

Pretraining is the dominant cost, so tasks (and their pretrained
checkpoints) are cached per session and shared across the table/figure
benchmarks.  Every benchmark appends its headline numbers to
``benchmarks/results/<name>.json`` so EXPERIMENTS.md can be regenerated
from a single run.

Each results file also carries a ``runtime`` block: the benchmark's own
wall-clock duration, and — when the benchmark captured structured
telemetry via ``record_result.telemetry(name)`` — the paths of its
``events.jsonl``/``metrics.json`` snapshot under
``benchmarks/results/telemetry/<name>/`` (render with
``repro report-run``).

Scale selection: set ``REPRO_BENCH_SCALE`` to ``smoke`` / ``bench`` /
``paper``.  The default is ``smoke`` so a plain
``pytest benchmarks/ --benchmark-only`` completes in well under an hour
on a single CPU; ``bench``/``paper`` trade time for fidelity.
"""

import json
import os
import pathlib
import time

import pytest

from repro.experiments import SCALES, Task, build_task
from repro.telemetry import Telemetry

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "smoke")
    if scale not in SCALES:
        raise KeyError(f"REPRO_BENCH_SCALE must be one of {sorted(SCALES)}")
    return scale


_TASK_CACHE = {}


@pytest.fixture(scope="session")
def get_task():
    """Factory fixture returning cached, pretrained tasks by name."""

    def factory(name: str, scale: str = None) -> Task:
        scale = scale or bench_scale()
        key = (name, scale)
        if key not in _TASK_CACHE:
            task = build_task(name, scale=scale)
            task.pretrained_model()  # trigger + cache the pretraining
            _TASK_CACHE[key] = task
        return _TASK_CACHE[key]

    return factory


class BenchRecorder:
    """Callable result writer that also tracks runtime + telemetry.

    ``recorder(name, payload)`` persists the payload (plus a ``runtime``
    block) to ``results/<name>.json``.  ``recorder.telemetry(name)``
    returns a live :class:`repro.telemetry.Telemetry` handle writing to
    ``results/telemetry/<name>/`` — pass it to :class:`CCQQuantizer` (or
    call ``PowerReport.record``) and the snapshot paths are recorded in
    the matching results file automatically.
    """

    def __init__(self) -> None:
        self._t0 = time.perf_counter()
        self._telemetry = {}

    def telemetry(self, name: str) -> Telemetry:
        if name not in self._telemetry:
            self._telemetry[name] = Telemetry.create(
                directory=RESULTS_DIR / "telemetry" / name,
                log_level="silent",
            )
        return self._telemetry[name]

    def __call__(self, name: str, payload: dict) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        runtime = {"wall_clock_seconds": time.perf_counter() - self._t0}
        handle = self._telemetry.get(name)
        if handle is not None and handle.directory is not None:
            handle.flush()
            runtime["telemetry_events"] = str(handle.events_path)
            runtime["telemetry_metrics"] = str(handle.metrics_path)
        payload = dict(payload)
        payload["runtime"] = runtime
        path = RESULTS_DIR / f"{name}.json"
        with open(path, "w") as f:
            json.dump(payload, f, indent=2, default=float)
        self._append_trajectory(name, runtime, handle)

    def _append_trajectory(self, name, runtime, handle) -> None:
        """Fold this benchmark into the consolidated
        ``BENCH_trajectory.json``: one entry per benchmark with its
        wall-clock and key telemetry, so one file answers "what did the
        whole suite cost and where did the time go"."""
        entry = {
            "recorded_at": time.time(),
            "wall_clock_seconds": runtime["wall_clock_seconds"],
        }
        if handle is not None:
            snapshot = handle.registry.snapshot()
            entry["counters"] = {
                c["name"]: c["value"]
                for c in snapshot.get("counters", [])
                if not c.get("labels")
            }
            entry["histograms"] = {
                h["name"]: {
                    k: h.get(k) for k in ("count", "p50", "p90", "p99")
                }
                for h in snapshot.get("histograms", [])
                if not h.get("labels")
            }
            if handle.directory is not None:
                entry["telemetry_dir"] = str(handle.directory)
        path = RESULTS_DIR / "BENCH_trajectory.json"
        try:
            with open(path, "r", encoding="utf-8") as f:
                trajectory = json.load(f)
        except (OSError, json.JSONDecodeError):
            trajectory = {}
        if not isinstance(trajectory, dict):
            trajectory = {}
        trajectory.setdefault("format", "bench-trajectory-v1")
        trajectory.setdefault("benches", {})
        trajectory["benches"][name] = entry
        trajectory["updated_at"] = time.time()
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as f:
            json.dump(trajectory, f, indent=2, default=float)
        tmp.replace(path)

    def close(self) -> None:
        for handle in self._telemetry.values():
            handle.close()


@pytest.fixture()
def record_result():
    """Persist one benchmark's headline numbers (+ runtime) as JSON.

    Function-scoped so the recorded wall-clock covers exactly one
    benchmark, including its share of fixture setup.
    """
    recorder = BenchRecorder()
    yield recorder
    recorder.close()
