"""Shared benchmark fixtures: cached tasks and result recording.

Pretraining is the dominant cost, so tasks (and their pretrained
checkpoints) are cached per session and shared across the table/figure
benchmarks.  Every benchmark appends its headline numbers to
``benchmarks/results/<name>.json`` so EXPERIMENTS.md can be regenerated
from a single run.

Scale selection: set ``REPRO_BENCH_SCALE`` to ``smoke`` / ``bench`` /
``paper``.  The default is ``smoke`` so a plain
``pytest benchmarks/ --benchmark-only`` completes in well under an hour
on a single CPU; ``bench``/``paper`` trade time for fidelity.
"""

import json
import os
import pathlib

import pytest

from repro.experiments import SCALES, Task, build_task

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "smoke")
    if scale not in SCALES:
        raise KeyError(f"REPRO_BENCH_SCALE must be one of {sorted(SCALES)}")
    return scale


_TASK_CACHE = {}


@pytest.fixture(scope="session")
def get_task():
    """Factory fixture returning cached, pretrained tasks by name."""

    def factory(name: str, scale: str = None) -> Task:
        scale = scale or bench_scale()
        key = (name, scale)
        if key not in _TASK_CACHE:
            task = build_task(name, scale=scale)
            task.pretrained_model()  # trigger + cache the pretraining
            _TASK_CACHE[key] = task
        return _TASK_CACHE[key]

    return factory


@pytest.fixture(scope="session")
def record_result():
    """Persist one benchmark's headline numbers as JSON."""

    def save(name: str, payload: dict) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.json"
        with open(path, "w") as f:
            json.dump(payload, f, indent=2, default=float)

    return save
