"""Serving-engine benchmark: throughput and tail latency under load.

Drives the compiled integer engine with >= 8 concurrent closed-loop
clients through the micro-batcher and records p50/p90/p99 latency and
throughput into ``results/serving.json`` (and, via the telemetry
registry, the serving histograms into ``BENCH_trajectory.json``).

Two correctness claims ARE asserted, because a benchmark that times a
wrong engine is meaningless:

* every response under concurrent batched load is bitwise identical to
  solo serial execution of the same input (batch-invariance), and
* the measured p99 is finite with zero failed requests.
"""

import math
import os

import numpy as np

from repro import models
from repro.nn import Tensor, no_grad
from repro.quantization import quantize_model, set_uniform_bits
from repro.serving import (
    ServingEngine,
    batch_invariance_errors,
    compile_model,
    run_load,
)

def _scale() -> str:
    """Mirror of ``conftest.bench_scale`` (kept import-free so the
    module also runs standalone outside pytest collection)."""
    return os.environ.get("REPRO_BENCH_SCALE", "smoke")


N_CLIENTS = 8
SCALE_REQUESTS = {"micro": 6, "smoke": 12, "bench": 40, "paper": 120}


def _build_compiled(rng):
    net = models.SmallConvNet(in_channels=3, num_classes=10, width=8, rng=rng)
    net.train()
    with no_grad():
        for _ in range(3):
            net(Tensor(rng.normal(size=(8, 3, 12, 12))))
    net.eval()
    quantize_model(net, "pact")
    set_uniform_bits(net, 4, 4)
    calibration = rng.normal(size=(8, 3, 12, 12))
    with no_grad():
        net(Tensor(calibration))
    return compile_model(net, calibration)


def test_serving_concurrent_load(record_result):
    telemetry = record_result.telemetry("serving")
    rng = np.random.default_rng(0)
    compiled = _build_compiled(rng)
    requests_per_client = SCALE_REQUESTS.get(_scale(), 12)
    inputs = [rng.normal(size=compiled.input_shape) for _ in range(32)]

    engine = ServingEngine(
        compiled,
        max_batch_size=8,
        max_wait_ms=2.0,
        backend="threaded",
        telemetry=telemetry,
    )
    try:
        result = run_load(
            engine, inputs,
            n_clients=N_CLIENTS,
            requests_per_client=requests_per_client,
        )
    finally:
        engine.close()

    mismatches = batch_invariance_errors(compiled, inputs, result)
    assert mismatches == [], (
        f"batched responses diverged from solo execution: {mismatches}"
    )
    assert result.n_failures == 0
    assert math.isfinite(result.latency_p99_ms)

    batch_sizes = telemetry.registry.histogram("serving.batch_size")
    record_result("serving", {
        "scale": _scale(),
        "n_clients": result.n_clients,
        "requests_per_client": result.requests_per_client,
        "n_requests": result.n_requests,
        "n_failures": result.n_failures,
        "throughput_rps": result.throughput_rps,
        "latency_p50_ms": result.latency_p50_ms,
        "latency_p90_ms": result.latency_p90_ms,
        "latency_p99_ms": result.latency_p99_ms,
        "mean_batch_size": (
            sum(batch_sizes.values) / len(batch_sizes.values)
            if getattr(batch_sizes, "values", None) else None
        ),
        "batch_invariant": True,
    })
