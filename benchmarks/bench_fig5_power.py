"""Figure 5: MAC power of unquantized / partially / fully quantized nets.

Paper protocol: synthesize a MAC unit per precision (DesignWare @32nm —
here the calibrated analytic model, see DESIGN.md) and compare, at
iso-throughput, the power of

  * the unquantized fp32 network,
  * partially quantized ``fp-4b-fp`` and ``fp-2b-fp`` (fp first/last),
  * the fully quantized mixed-precision network, whose first/last bits
    follow the paper: ResNet20 6/2, ResNet18 6/6, ResNet50 8/3.

Shape claims checked for every network:
  * power strictly decreases: unquantized > fp-4b-fp > fp-2b-fp > fully
    quantized;
  * the fp first/last pair of the partially quantized nets draws 4-56x
    the power of the entire quantized middle (the paper's statistic);
  * the fully quantized net is the only configuration whose edge power is
    comparable to its middle power.
"""

import numpy as np

from repro import models
from repro.hardware import NODE_32NM_SYNTH, power_of_config, trace_layer_macs

# (label, constructor, input_shape, (first_bits, last_bits) of the
# paper's fully-quantized configuration)
NETWORKS = [
    (
        "ResNet20_CIFAR",
        lambda: models.resnet20(rng=np.random.default_rng(0)),
        (3, 32, 32),
        (6, 2),
    ),
    (
        "ResNet18",
        lambda: models.resnet18(
            num_classes=1000, rng=np.random.default_rng(0)
        ),
        (3, 64, 64),
        (6, 6),
    ),
    (
        "ResNet50",
        lambda: models.resnet50(
            num_classes=1000, rng=np.random.default_rng(0)
        ),
        (3, 64, 64),
        (8, 3),
    ),
]

FPS = 30.0


def run_network(label, make_model, input_shape, edge_bits,
                telemetry=None) -> dict:
    model = make_model()
    n = len(trace_layer_macs(model, input_shape))
    first, last = edge_bits

    configs = {
        "unquantized": [(None, None)] * n,
        "fp-4b-fp": [(None, None)] + [(4, 4)] * (n - 2) + [(None, None)],
        "fp-2b-fp": [(None, None)] + [(2, 2)] * (n - 2) + [(None, None)],
        "fully-quantized": (
            [(first, first)] + [(2, 2)] * (n - 2) + [(last, last)]
        ),
    }
    out = {"network": label}
    for name, bit_config in configs.items():
        report = power_of_config(
            model, input_shape, bit_config, fps=FPS, node=NODE_32NM_SYNTH
        )
        out[name] = {
            "total_mw": report.total_watts * 1e3,
            "edge_mw": report.edge_watts * 1e3,
            "middle_mw": report.middle_watts * 1e3,
            "edge_to_middle": report.edge_to_middle_ratio,
        }
        if telemetry is not None and telemetry.enabled:
            telemetry.event(
                "power_summary",
                network=label, config=name,
                total_mw=out[name]["total_mw"],
                edge_mw=out[name]["edge_mw"],
                middle_mw=out[name]["middle_mw"],
            )
    return out


def bench_fig5_power(benchmark, record_result):
    telemetry = record_result.telemetry("fig5")

    def run():
        return [run_network(*spec, telemetry=telemetry)
                for spec in NETWORKS]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nFig. 5 — MAC power at iso-throughput (32nm-synth model, 30 fps)")
    header = f"{'network':<16}" + "".join(
        f"{c:>18}" for c in ("unquantized", "fp-4b-fp", "fp-2b-fp", "fully-quant")
    )
    print(header + f"{'edge/mid(2b)':>14}")
    for row in rows:
        line = f"{row['network']:<16}"
        for c in ("unquantized", "fp-4b-fp", "fp-2b-fp", "fully-quantized"):
            line += f"{row[c]['total_mw']:16.3f}mW"
        line += f"{row['fp-2b-fp']['edge_to_middle']:13.1f}x"
        print(line)
    record_result("fig5", {"rows": rows})

    for row in rows:
        # Strictly decreasing power across the four configurations.
        seq = [
            row[c]["total_mw"]
            for c in ("unquantized", "fp-4b-fp", "fp-2b-fp", "fully-quantized")
        ]
        assert all(a > b for a, b in zip(seq, seq[1:])), row
        # fp edges dominate the quantized middle by the paper's 4-56x band
        # (checked on the fp-2b-fp configuration).
        ratio = row["fp-2b-fp"]["edge_to_middle"]
        assert 4.0 <= ratio <= 56.0, (row["network"], ratio)
        # In the fully quantized net the edges no longer dominate.
        assert row["fully-quantized"]["edge_to_middle"] < 1.0, row
