"""Ablation: per-layer vs per-block competition granularity.

The paper frames CCQ over "different parts of the model (e.g., layers)";
HAWQ (its mixed-precision comparison point) assigns precision to
layers/blocks.  This ablation runs CCQ at both granularities on the same
network and budget:

* **layer** — every conv/linear is an expert (the paper's default);
* **block** — one expert per residual block (`residual_block_groups`),
  cutting the expert count ~2x and the steps-to-target accordingly.

Shape claims checked:
  * both reach the compression target;
  * block granularity uses fewer quantization steps;
  * accuracies land in the same band (coarser granularity is not
    catastrophically worse on a small network).
"""

from repro.core import (
    CCQConfig,
    CCQQuantizer,
    DEFAULT_LADDER,
    LambdaSchedule,
    RecoveryConfig,
    residual_block_groups,
)
from repro.quantization import quantize_model

TARGET_COMPRESSION = 9.0


def run_granularity(task, block_level: bool, telemetry=None) -> dict:
    model, baseline = task.pretrained_model()
    train, val = task.loaders()
    quantize_model(model, "pact")
    groups = residual_block_groups(model) if block_level else None
    config = CCQConfig(
        ladder=DEFAULT_LADDER,
        probes_per_step=4,
        probe_batches=1,
        lambda_schedule=LambdaSchedule(start=0.7, end=0.2, decay_steps=15),
        recovery=RecoveryConfig(
            mode="adaptive", max_epochs=task.scale.finetune_epochs + 1,
            slack=0.01,
        ),
        lr=0.02,
        initial_recovery_epochs=1,
        target_compression=TARGET_COMPRESSION,
        max_steps=40,
        seed=0,
    )
    ccq = CCQQuantizer(model, train, val, config=config, groups=groups,
                       telemetry=telemetry)
    result = ccq.run()
    return {
        "granularity": "block" if block_level else "layer",
        "experts": len(ccq.experts),
        "baseline": baseline,
        "accuracy": result.final_eval.accuracy,
        "compression": result.compression,
        "steps": len(result.records),
        "probes": result.probe_forward_passes,
    }


def bench_ablation_granularity(benchmark, get_task, record_result):
    task = get_task("resnet20_cifar10")
    telemetry = record_result.telemetry("ablation_granularity")

    def run():
        return {
            "layer": run_granularity(task, block_level=False,
                                     telemetry=telemetry),
            "block": run_granularity(task, block_level=True,
                                     telemetry=telemetry),
        }

    data = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nAblation — competition granularity (ResNet20 / synthetic CIFAR10)")
    print(f"{'granularity':<12} {'experts':>8} {'acc%':>7} {'compr':>7} "
          f"{'steps':>6} {'probes':>7}")
    for key in ("layer", "block"):
        d = data[key]
        print(
            f"{d['granularity']:<12} {d['experts']:>8} "
            f"{d['accuracy']*100:7.2f} {d['compression']:6.2f}x "
            f"{d['steps']:>6} {d['probes']:>7}"
        )
    record_result("ablation_granularity", data)

    layer, block = data["layer"], data["block"]
    assert block["experts"] < layer["experts"]
    assert layer["compression"] >= 7.0 and block["compression"] >= 7.0
    assert block["steps"] <= layer["steps"]
    # Same accuracy band (loose: coarse granularity gives up some
    # flexibility but must not collapse).
    assert block["accuracy"] >= layer["accuracy"] - 0.08
