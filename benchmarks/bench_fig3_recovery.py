"""Figure 3: manual vs adaptive recovery.

Paper protocol: run the same gradual quantization twice — once with a
predetermined recovery budget per step (manual), once retraining until an
accuracy threshold is met (adaptive) — and compare both the recovery
reliability and the epochs spent.  The paper observes that manual budgets
either waste epochs on easy steps or fail to recover hard ones, while
adaptive recovery sizes each step's fine-tuning automatically (some steps
take one epoch, some take several).

Shape claims checked:
  * adaptive recovery ends at an accuracy >= manual recovery (slack);
  * adaptive spends a *variable* number of epochs per step (the paper's
    observation that steps differ);
  * at least one adaptive step needed <= 1 epoch and at least one needed
    more than one (on a run with measurable valleys).
"""

from repro.core import (
    CCQConfig,
    CCQQuantizer,
    DEFAULT_LADDER,
    LambdaSchedule,
    RecoveryConfig,
)


def run_mode(task, recovery: RecoveryConfig, seed: int = 0,
             telemetry=None) -> dict:
    model, baseline = task.pretrained_model()
    train, val = task.loaders()
    config = CCQConfig(
        ladder=DEFAULT_LADDER,
        probes_per_step=4,
        probe_batches=1,
        lambda_schedule=LambdaSchedule(start=0.7, end=0.2, decay_steps=15),
        recovery=recovery,
        lr=0.02,
        initial_recovery_epochs=1,
        target_compression=9.0,
        max_steps=30,
        seed=seed,
    )
    ccq = CCQQuantizer(model, train, val, config=config, policy="pact",
                       telemetry=telemetry)
    result = ccq.run()
    return {
        "baseline": baseline,
        "final": result.final_eval.accuracy,
        "compression": result.compression,
        "epochs_per_step": [r.recovery.epochs_used for r in result.records],
        "recovered_flags": [r.recovery.recovered for r in result.records],
    }


def bench_fig3_recovery(benchmark, get_task, record_result):
    task = get_task("resnet20_cifar10")
    ft = task.scale.finetune_epochs
    telemetry = record_result.telemetry("fig3")

    def run():
        manual = run_mode(
            task,
            RecoveryConfig(mode="manual", epochs=ft, use_hybrid_lr=True),
            telemetry=telemetry,
        )
        adaptive = run_mode(
            task,
            RecoveryConfig(
                mode="adaptive", max_epochs=ft + 2, slack=0.01,
                use_hybrid_lr=True,
            ),
            telemetry=telemetry,
        )
        return {"manual": manual, "adaptive": adaptive}

    data = benchmark.pedantic(run, rounds=1, iterations=1)

    manual, adaptive = data["manual"], data["adaptive"]
    print("\nFig. 3 — manual vs adaptive recovery (ResNet20 / synthetic CIFAR10)")
    for mode in ("manual", "adaptive"):
        d = data[mode]
        print(
            f"{mode:<9} final {d['final']*100:6.2f}%  "
            f"compr {d['compression']:5.2f}x  "
            f"epochs/step {d['epochs_per_step']}"
        )
    record_result("fig3", data)

    # Adaptive is at least as good as manual at the end.
    assert adaptive["final"] >= manual["final"] - 0.02
    # Adaptive budgets vary across steps; manual is constant by design.
    assert len(set(adaptive["epochs_per_step"])) > 1, adaptive
    assert min(adaptive["epochs_per_step"]) <= 1
