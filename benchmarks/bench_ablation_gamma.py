"""Ablation: the Hedge temperature gamma of the competition stage.

DESIGN.md calls out the exponential-weights learning rate as a design
choice worth ablating: gamma -> 0 makes the competition a uniform random
pick (no learning), large gamma makes it winner-take-all after few probes.
This ablation runs CCQ at several gamma values and also against a
pure-random layer picker, checking that a *learned* competition is never
worse than random picking (the algorithmic value of the competition
stage).

Shape claims checked:
  * all gammas complete to the target compression;
  * the best learned gamma matches or beats the random-pick control.
"""

import numpy as np

from repro.core import (
    CCQConfig,
    CCQQuantizer,
    DEFAULT_LADDER,
    RecoveryConfig,
)

GAMMAS = (0.1, 1.0, 5.0)
TARGET_COMPRESSION = 9.0


def make_config(gamma: float, probes: int, finetune_epochs: int) -> CCQConfig:
    return CCQConfig(
        ladder=DEFAULT_LADDER,
        gamma=gamma,
        probes_per_step=probes,
        probe_batches=1,
        recovery=RecoveryConfig(
            mode="adaptive", max_epochs=finetune_epochs + 1, slack=0.01
        ),
        lr=0.02,
        initial_recovery_epochs=1,
        target_compression=TARGET_COMPRESSION,
        max_steps=25,
        seed=0,
    )


def run_gamma(task, gamma: float, probes: int = 4, telemetry=None) -> dict:
    model, baseline = task.pretrained_model()
    train, val = task.loaders()
    ccq = CCQQuantizer(
        model, train, val,
        config=make_config(gamma, probes, task.scale.finetune_epochs),
        policy="pact", telemetry=telemetry,
    )
    result = ccq.run()
    return {
        "gamma": gamma,
        "accuracy": result.final_eval.accuracy,
        "baseline": baseline,
        "compression": result.compression,
        "probes": result.probe_forward_passes,
    }


def run_random_control(task, telemetry=None) -> dict:
    """gamma ~ 0 with a single probe approximates uniform random picking."""
    out = run_gamma(task, gamma=1e-6, probes=1, telemetry=telemetry)
    out["gamma"] = "random"
    return out


def bench_ablation_gamma(benchmark, get_task, record_result):
    task = get_task("resnet20_cifar10")
    telemetry = record_result.telemetry("ablation_gamma")

    def run():
        rows = [run_gamma(task, g, telemetry=telemetry) for g in GAMMAS]
        rows.append(run_random_control(task, telemetry=telemetry))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nAblation — Hedge temperature gamma (ResNet20 / synthetic CIFAR10)")
    print(f"{'gamma':>8} {'acc%':>7} {'compr':>7} {'probes':>7}")
    for row in rows:
        print(
            f"{str(row['gamma']):>8} {row['accuracy']*100:7.2f} "
            f"{row['compression']:6.2f}x {row['probes']:7d}"
        )
    record_result("ablation_gamma", {"rows": rows})

    learned = [r for r in rows if r["gamma"] != "random"]
    random_row = next(r for r in rows if r["gamma"] == "random")
    # Every run compresses substantially (the step budget may cut runs
    # short of the full 9x target; what matters is comparability).
    assert all(r["compression"] >= 5.0 for r in rows)
    best_learned = max(r["accuracy"] for r in learned)
    assert best_learned >= random_row["accuracy"] - 0.02
