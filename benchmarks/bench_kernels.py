"""Kernel-backend microbenchmarks: measured speedups, asserted bits.

The pluggable backend contract (:mod:`repro.nn.backends`) is that every
backend is bit-identical to ``reference`` and any speed difference is a
pure implementation detail.  This benchmark *measures* that difference —
per-backend forward-conv wall-clock on the headline probe shape, the
integer-inference conv, and the fused fake-quant conv — and records the
ratios without asserting them (machines differ; the equivalence tests in
``tests/nn/test_backends.py`` own the hard guarantees).

Two things ARE asserted, because they are correctness claims rather than
timing claims:
  * every backend's output is byte-identical to ``reference`` on every
    shape timed here (a benchmark that times divergent kernels would be
    meaningless);
  * the integer-inference path performs zero float64 im2col work — the
    column matrices it builds are int64 end to end (the float round-trip
    this lowering replaced is the bug the PR fixed).
"""

import time

import numpy as np

from repro.nn import Tensor, no_grad
from repro.nn import functional as F
from repro.nn.backends import (
    KernelBackend,
    available_backends,
    use_backend,
)
from repro.quantization.dorefa import DoReFaWeightQuantizer
from repro.quantization.integer_inference import AffineCode, integer_conv2d

# (label, x shape, filters, kernel, stride, padding).  The headline row
# is the CCQ probe workhorse: a mid-network conv at CIFAR resolution.
CONV_SHAPES = [
    ("headline-conv3x3", (16, 16, 32, 32), 16, 3, 1, 1),
    ("first-layer", (16, 3, 32, 32), 16, 3, 1, 1),
    ("stride2-downsample", (16, 16, 16, 16), 32, 3, 2, 1),
    ("pointwise", (16, 32, 16, 16), 32, 1, 1, 0),
]

REPEATS = 7
WARMUP = 2


def _best_of(fn, repeats=REPEATS, warmup=WARMUP):
    """Min-of-N wall clock: the least-noisy point estimate on a busy
    single-CPU container."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _conv_inputs(rng, shape_row):
    _, xshape, filters, kernel, _, _ = shape_row
    x = Tensor(rng.normal(size=xshape))
    w = Tensor(rng.normal(size=(filters, xshape[1], kernel, kernel)) * 0.2)
    b = Tensor(rng.normal(size=(filters,)) * 0.1)
    return x, w, b


def test_kernel_backend_speed(record_result):
    rng = np.random.default_rng(0)
    backends = list(available_backends())
    assert "reference" in backends

    conv_rows = []
    for row in CONV_SHAPES:
        label, xshape, filters, kernel, stride, padding = row
        x, w, b = _conv_inputs(rng, row)
        times = {}
        outputs = {}
        for name in backends:
            with use_backend(name), no_grad():
                times[name] = _best_of(
                    lambda: F.conv2d(x, w, b, stride=stride, padding=padding)
                )
                outputs[name] = F.conv2d(
                    x, w, b, stride=stride, padding=padding
                ).data
        for name in backends:
            # Bit-identity is the backend contract; timing a divergent
            # kernel would be a category error.
            np.testing.assert_array_equal(outputs[name], outputs["reference"])
        conv_rows.append({
            "shape": label,
            "x": list(xshape),
            "filters": filters,
            "kernel": kernel,
            "stride": stride,
            "padding": padding,
            "seconds": times,
            "speedup_vs_reference": {
                name: times["reference"] / times[name] for name in backends
            },
        })

    # --- integer-inference conv: exact int64 path, per backend -------
    x_codes = AffineCode(
        codes=rng.integers(0, 15, size=(16, 16, 32, 32)).astype(np.int64),
        scale=0.125, offset=-0.875,
    )
    w_codes = AffineCode(
        codes=rng.integers(0, 7, size=(16, 16, 3, 3)).astype(np.int64),
        scale=0.25, offset=-0.75,
    )
    bias = rng.normal(size=(16,))

    # Spy on every im2col lowering the integer path triggers: the fixed
    # path must never build a float64 column matrix from codes.
    im2col_dtypes = []
    real_im2col = KernelBackend.im2col

    def spying_im2col(self, array, *args, **kwargs):
        im2col_dtypes.append(np.asarray(array).dtype)
        return real_im2col(self, array, *args, **kwargs)

    int_times = {}
    int_outputs = {}
    KernelBackend.im2col = spying_im2col
    try:
        for name in backends:
            with use_backend(name):
                int_times[name] = _best_of(
                    lambda: integer_conv2d(
                        x_codes, w_codes, bias, stride=1, padding=1
                    )
                )
                int_outputs[name] = integer_conv2d(
                    x_codes, w_codes, bias, stride=1, padding=1
                )
    finally:
        KernelBackend.im2col = real_im2col
    for name in backends:
        np.testing.assert_array_equal(int_outputs[name],
                                      int_outputs["reference"])
    assert im2col_dtypes, "integer conv never reached the im2col lowering"
    float64_cols = sum(1 for d in im2col_dtypes if d.kind == "f")
    assert float64_cols == 0, (
        "integer path built a float column matrix — the round-trip bug"
    )

    # --- fused fake-quant conv vs quantize-then-conv -----------------
    label, xshape, filters, kernel, stride, padding = CONV_SHAPES[0]
    x, w, b = _conv_inputs(rng, CONV_SHAPES[0])
    quantizer = DoReFaWeightQuantizer()
    quantizer.set_bits(4)
    fused_rows = {}
    for name in backends:
        with use_backend(name), no_grad():
            unfused_s = _best_of(
                lambda: F.conv2d(x, quantizer(w), b,
                                 stride=stride, padding=padding)
            )
            fused_s = _best_of(
                lambda: F.fused_quant_conv2d(x, w, b, quantizer,
                                             stride=stride, padding=padding)
            )
            np.testing.assert_array_equal(
                F.fused_quant_conv2d(
                    x, w, b, quantizer, stride=stride, padding=padding
                ).data,
                F.conv2d(
                    x, quantizer(w), b, stride=stride, padding=padding
                ).data,
            )
        fused_rows[name] = {
            "unfused_s": unfused_s,
            "fused_s": fused_s,
            "fused_speedup": unfused_s / fused_s,
        }

    record_result("BENCH_kernels", {
        "backends": backends,
        "repeats": REPEATS,
        "warmup": WARMUP,
        "conv_forward": conv_rows,
        "integer_conv": {
            "x_codes": list(x_codes.codes.shape),
            "w_codes": list(w_codes.codes.shape),
            "seconds": int_times,
            "speedup_vs_reference": {
                name: int_times["reference"] / int_times[name]
                for name in backends
            },
            "im2col_dtypes_seen": sorted(
                {str(d) for d in im2col_dtypes}
            ),
            "float64_im2col_calls": float64_cols,
        },
        "fused_quant_conv": {
            "shape": label,
            "per_backend": fused_rows,
        },
    })
