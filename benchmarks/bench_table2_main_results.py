"""Table II: CCQ vs uniform-precision and HAWQ baselines.

Paper protocol: on ResNet20/CIFAR10, ResNet18/ImageNet and
ResNet50/ImageNet, compare uniform-precision baselines (DoReFa, PACT,
PACT-SAWB, LQ-Nets, LSQ-as-QIL — all with fp first/last layers) and the
HAWQ mixed-precision assigner against CCQ's learned mixed precision, on
baseline-relative *degradation* and model compression.

Shape claims checked per task:
  * CCQ reaches high compression (>= 7x) with the smallest (or tied
    smallest) degradation among all frameworks;
  * CCQ quantizes the first and last layers (no fp-pinned edges) yet
    stays competitive.

Paper numbers to compare shapes against (degradation % / compression):
  ResNet20:  DoReFa 1.9/10.3x, PACT 0.3/7.8x, SAWB 1.15/<15x,
             LQ-Nets 0.5/10.3x, HAWQ 0.15/13.1x, CCQ 0.06/10.1x
  ResNet18:  DoReFa 7.6, PACT 5.8, SAWB 3.4, LQ-Nets 5.4, QIL 4.8,
             CCQ 2.6 at 9.75x
  ResNet50:  DoReFa 9.8, PACT 4.7, SAWB 2.7, LQ-Nets 2.4, HAWQ 1.9,
             CCQ 1.45 at 8.5x
"""

from repro.baselines import (
    OneShotConfig,
    TableRow,
    hawq_quantize,
    uniform_quantize,
)
from repro.core import (
    CCQConfig,
    CCQQuantizer,
    DEFAULT_LADDER,
    LambdaSchedule,
    RecoveryConfig,
)
from repro.experiments import TASK_NAMES

# (framework label, policy, uniform bits) — mirrors the table's rows.
UNIFORM_ROWS = {
    "resnet20_cifar10": [
        ("DoReFa", "dorefa", 3),
        ("PACT", "pact", 4),
        ("PACT-SAWB", "pact_sawb", 2),
        ("LQ-Nets", "lqnets", 3),
    ],
    "resnet18_imagenet": [
        ("DoReFa", "dorefa", 2),
        ("PACT", "pact", 2),
        ("PACT-SAWB", "pact_sawb", 2),
        ("QIL", "qil", 2),
    ],
    "resnet50_imagenet": [
        ("DoReFa", "dorefa", 3),
        ("PACT", "pact", 3),
        ("PACT-SAWB", "pact_sawb", 2),
        ("LQ-Nets", "lqnets", 2),
        ("QIL", "qil", 3),
    ],
}

TARGET_COMPRESSION = 9.0


def run_ccq_row(task, baseline: float, telemetry=None) -> TableRow:
    model, _ = task.pretrained_model()
    train, val = task.loaders()
    config = CCQConfig(
        ladder=DEFAULT_LADDER,
        probes_per_step=4,
        probe_batches=1,
        lambda_schedule=LambdaSchedule(start=0.7, end=0.2, decay_steps=15),
        recovery=RecoveryConfig(
            mode="adaptive",
            max_epochs=task.scale.finetune_epochs + 1,
            slack=0.01,
        ),
        lr=0.02,
        initial_recovery_epochs=1,
        target_compression=TARGET_COMPRESSION,
        max_steps=50,
        seed=0,
    )
    ccq = CCQQuantizer(model, train, val, config=config, policy="pact",
                       telemetry=telemetry)
    result = ccq.run()
    return TableRow(
        framework="PACT+CCQ (ours)",
        baseline_top1=baseline,
        bits="MP",
        first_last="MP",
        quantized_top1=result.final_eval.accuracy,
        compression=result.compression,
        degradation=baseline - result.final_eval.accuracy,
    )


def run_hawq_row(task, baseline: float) -> TableRow:
    model, _ = task.pretrained_model()
    train, val = task.loaders()
    result = hawq_quantize(
        model, train, val, policy="pact",
        target_compression=TARGET_COMPRESSION,
        config=OneShotConfig(epochs=task.scale.finetune_epochs, lr=0.02),
        n_probes=1,
    )
    return TableRow(
        framework="HAWQ (proxy)",
        baseline_top1=baseline,
        bits="MP",
        first_last="MP",
        quantized_top1=result.final.accuracy,
        compression=result.compression,
        degradation=baseline - result.final.accuracy,
    )


def run_task(task, telemetry=None) -> list:
    _, baseline = task.pretrained_model()
    rows = []
    for label, policy, bits in UNIFORM_ROWS[task.name]:
        model, _ = task.pretrained_model()
        train, val = task.loaders()
        row, _ = uniform_quantize(
            model, train, val, policy=policy, bits=bits,
            baseline_accuracy=baseline,
            config=OneShotConfig(epochs=task.scale.finetune_epochs, lr=0.02),
            framework_name=label,
        )
        rows.append(row)
    rows.append(run_hawq_row(task, baseline))
    rows.append(run_ccq_row(task, baseline, telemetry=telemetry))
    return rows


def _print_rows(task_name: str, rows) -> None:
    print(f"\nTable II — {task_name}")
    print(TableRow.header())
    for row in rows:
        print(row.formatted())


def _check_shape(rows) -> None:
    ccq = next(r for r in rows if "CCQ" in r.framework)
    others = [r for r in rows if "CCQ" not in r.framework]
    # CCQ compresses hard (the step budget may stop a point short of the
    # 9x target) and is at least near the best baseline degradation
    # (5% single-seed noise slack at the smoke scale) while quantizing
    # the first/last layers that every baseline pins at fp32.
    assert ccq.compression >= 6.5, ccq
    best_other = min(r.degradation for r in others)
    assert ccq.degradation <= best_other + 0.05, (ccq, best_other)
    assert ccq.first_last == "MP"


def _bench_table2(benchmark, task, record_result, result_name: str) -> None:
    telemetry = record_result.telemetry(result_name)
    rows = benchmark.pedantic(
        lambda: run_task(task, telemetry=telemetry), rounds=1, iterations=1
    )
    _print_rows(task.name, rows)
    record_result(result_name, {"rows": [vars(r) for r in rows]})
    _check_shape(rows)


def bench_table2_resnet20_cifar10(benchmark, get_task, record_result):
    task = get_task("resnet20_cifar10")
    _bench_table2(benchmark, task, record_result, "table2_resnet20")


def bench_table2_resnet18_imagenet(benchmark, get_task, record_result):
    task = get_task("resnet18_imagenet")
    _bench_table2(benchmark, task, record_result, "table2_resnet18")


def bench_table2_resnet50_imagenet(benchmark, get_task, record_result):
    task = get_task("resnet50_imagenet")
    _bench_table2(benchmark, task, record_result, "table2_resnet50")
