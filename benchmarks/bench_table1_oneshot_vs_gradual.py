"""Table I: one-shot vs gradual (CCQ) quantization at a fixed bit pattern.

Paper protocol: take the ``fp-3b-fp`` configuration each policy reports
(full-precision first/last layers, 3-bit middle), reach it either in one
jump (one-shot) or gradually through CCQ's competition/collaboration with
the *same* policy, and compare final accuracy.  ResNet20 on (synthetic)
CIFAR10, for DoReFa, WRPN and PACT.

Shape claim checked: gradual >= one-shot for every policy (small noise
slack on the synthetic substitute).

Paper numbers (top-1 %):
    DoReFa  one-shot 89.9   gradual 91.8
    WRPN    one-shot 87.9   gradual 89.33
    PACT    one-shot 91.1   gradual 91.94
"""

import numpy as np

from repro.baselines import OneShotConfig, edge_aware_config, one_shot_quantize
from repro.core import (
    BitLadder,
    CCQConfig,
    CCQQuantizer,
    RecoveryConfig,
)
from repro.quantization import quantize_model, quantized_layers

POLICIES = ("dorefa", "wrpn", "pact")
MIDDLE_BITS = 3


def run_policy(task, policy: str, telemetry=None) -> dict:
    scale = task.scale
    train, val = task.loaders()

    # --- one-shot -----------------------------------------------------------
    model_os, baseline = task.pretrained_model()
    quantize_model(model_os, policy)
    target = edge_aware_config(model_os, middle_bits=MIDDLE_BITS)
    oneshot = one_shot_quantize(
        model_os, train, val, target,
        config=OneShotConfig(epochs=2 * scale.finetune_epochs, lr=0.01),
    )

    # --- gradual (CCQ forced to the same configuration) ----------------------
    model_ccq, _ = task.pretrained_model()
    quantize_model(model_ccq, policy)
    names = [n for n, _ in quantized_layers(model_ccq)]
    target_bits = {names[0]: None, names[-1]: None}
    for mid in names[1:-1]:
        target_bits[mid] = MIDDLE_BITS
    config = CCQConfig(
        ladder=BitLadder((8, 4, 3)),
        probes_per_step=3,
        probe_batches=1,
        recovery=RecoveryConfig(
            mode="adaptive", max_epochs=scale.finetune_epochs + 2, slack=0.02
        ),
        # A gentle recovery rate: low-bit DoReFa/WRPN nets diverge under
        # aggressive fine-tuning, and the hybrid-LR bump multiplies this.
        lr=0.01,
        initial_recovery_epochs=1,
        seed=0,
    )
    ccq = CCQQuantizer(
        model_ccq, train, val, config=config, target_config=target_bits,
        telemetry=telemetry,
    )
    gradual = ccq.run()

    return {
        "policy": policy,
        "baseline": baseline,
        "oneshot": oneshot.final.accuracy,
        "gradual": gradual.final_eval.accuracy,
        "steps": len(gradual.records),
    }


def bench_table1(benchmark, get_task, record_result):
    task = get_task("resnet20_cifar10")
    telemetry = record_result.telemetry("table1")

    def run():
        return [run_policy(task, policy, telemetry=telemetry)
                for policy in POLICIES]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nTable I — one-shot vs gradual (fp-3b-fp), ResNet20 / synthetic CIFAR10")
    print(f"{'Policy':<8} {'Baseline%':>10} {'One-shot%':>10} {'Gradual%':>10}")
    for row in rows:
        print(
            f"{row['policy']:<8} {row['baseline']*100:10.2f} "
            f"{row['oneshot']*100:10.2f} {row['gradual']*100:10.2f}"
        )
    record_result("table1", {"rows": rows})

    # Shape claim: gradual quantization is at least as good as one-shot
    # for every policy (2% slack for single-seed noise).
    for row in rows:
        assert row["gradual"] >= row["oneshot"] - 0.02, row
    # And strictly better on average, as in the paper.
    mean_gap = np.mean([r["gradual"] - r["oneshot"] for r in rows])
    assert mean_gap > -0.005
