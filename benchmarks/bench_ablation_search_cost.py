"""Ablation: CCQ's online competition vs HAQ-style RL search, iso-cost.

The paper's related-work section argues that RL-based mixed-precision
search (HAQ/ReLeQ) pays a vast exploration cost — every episode is a full
quantize + fine-tune rollout — while CCQ's competition only needs cheap
validation feed-forwards, spending its training budget exclusively on
recovery that directly improves the final network.

Protocol: run CCQ to a target compression and count every fine-tuning
epoch it consumed; give the HAQ searcher (REINFORCE over per-layer bit
menus with budget repair, ``repro.baselines.haq``) the *same* number of
fine-tuning epochs; compare the best accuracy each method delivers at
comparable compression.

Shape claims checked:
  * both reach the compression target;
  * at iso training cost, CCQ's accuracy >= HAQ's best (small slack);
  * CCQ's extra search overhead is feed-forward probes only;
  * the parallel probe backend (``probe_workers=2``) lands on the
    bit-identical trajectory, and its probe-stage wall-clock ratio is
    *recorded* (on a single-CPU container the fan-out cannot beat
    serial, so no speedup is asserted);
  * the serial path's quantized-weight cache sees real traffic.
"""

import time

from repro.baselines import HAQConfig, haq_search
from repro.core import (
    CCQConfig,
    CCQQuantizer,
    DEFAULT_LADDER,
    LambdaSchedule,
    RecoveryConfig,
)
from repro.core.training import make_sgd, train_epoch
from repro.parallel import DDPTrainer
from repro.quantization import quantize_model
from repro.telemetry import Telemetry

TARGET_COMPRESSION = 9.0


def run_ccq(task, telemetry=None, probe_workers=0) -> dict:
    model, baseline = task.pretrained_model()
    train, val = task.loaders()
    config = CCQConfig(
        ladder=DEFAULT_LADDER,
        probes_per_step=4,
        probe_batches=1,
        lambda_schedule=LambdaSchedule(start=0.7, end=0.2, decay_steps=15),
        recovery=RecoveryConfig(
            mode="adaptive", max_epochs=task.scale.finetune_epochs + 1,
            slack=0.01,
        ),
        lr=0.02,
        initial_recovery_epochs=1,
        target_compression=TARGET_COMPRESSION,
        max_steps=30,
        seed=0,
        probe_workers=probe_workers,
    )
    ccq = CCQQuantizer(model, train, val, config=config, policy="pact",
                       telemetry=telemetry)
    result = ccq.run()
    epochs = config.initial_recovery_epochs + sum(
        r.recovery.epochs_used for r in result.records
    )
    probe_stage_s = None
    if telemetry is not None and getattr(telemetry, "enabled", False):
        probe_stage_s = sum(
            telemetry.histogram("ccq.probe_stage_s").values
        )
    qweight_total = (
        result.qweight_cache_hits + result.qweight_cache_misses
    )
    return {
        "baseline": baseline,
        "accuracy": result.final_eval.accuracy,
        "compression": result.compression,
        "training_epochs": epochs,
        "probe_rounds": result.probe_rounds,
        "probe_forward_passes": result.probe_forward_passes,
        "probe_cache_hits": result.probe_cache_hits,
        # Measured probe-stage speedup from per-step memoization: the
        # rounds the competition issued over the forward passes that
        # actually ran (cache hits are effectively free).
        "probe_cache_speedup": (
            result.probe_rounds / result.probe_forward_passes
            if result.probe_forward_passes else 1.0
        ),
        "probe_workers": probe_workers,
        # Summed wall-clock of every step's probe stage (None when the
        # run had no live telemetry to time it).
        "probe_stage_s": probe_stage_s,
        "qweight_cache_hits": result.qweight_cache_hits,
        "qweight_cache_misses": result.qweight_cache_misses,
        "qweight_hit_rate": (
            result.qweight_cache_hits / qweight_total
            if qweight_total else 0.0
        ),
        "bit_config": {
            k: list(v) for k, v in result.bit_config.items()
        },
    }


def run_haq(task, epoch_budget: int) -> dict:
    state_factory_model, baseline = task.pretrained_model()
    train, val = task.loaders()

    def make_pretrained():
        model, _ = task.pretrained_model()
        quantize_model(model, "pact")
        return model

    finetune_epochs = max(task.scale.finetune_epochs, 1)
    episodes = max(epoch_budget // finetune_epochs, 2)
    result = haq_search(
        make_pretrained, train, val,
        HAQConfig(
            episodes=episodes,
            finetune_epochs=finetune_epochs,
            bit_menu=(2, 3, 4, 8),
            target_compression=TARGET_COMPRESSION,
            seed=0,
        ),
    )
    return {
        "baseline": baseline,
        "accuracy": result.best.accuracy,
        "compression": result.best.compression,
        "training_epochs": result.search_cost_epochs,
        "episodes": episodes,
    }


def measure_recovery_wallclock(task, n_batches: int = 8) -> dict:
    """Recovery-stage wall-clock: serial loop vs 2-worker DDP sharding.

    Both trainers start from the same freshly quantized state and
    consume the identical batch sequence; the DDP pass also reports its
    measured all-reduce overhead (gradient fold + BN replay) from the
    ``ccq.recover_allreduce_s`` histogram.  Pool startup happens before
    the timer — a run amortises the fork over many epochs.
    """

    def fresh():
        model, _ = task.pretrained_model()
        quantize_model(model, "pact")
        train, _ = task.loaders()
        return model, train, make_sgd(model, lr=0.02)

    model, train_loader, optimizer = fresh()
    t0 = time.perf_counter()
    train_epoch(model, train_loader, optimizer, max_batches=n_batches)
    serial_s = time.perf_counter() - t0

    model, train_loader, optimizer = fresh()
    telemetry = Telemetry.in_memory()
    trainer = DDPTrainer.standalone(
        model, workers=2, grad_shards=4, telemetry=telemetry
    )
    try:
        t0 = time.perf_counter()
        trainer(model, train_loader, optimizer, max_batches=n_batches)
        ddp_s = time.perf_counter() - t0
        degraded = trainer.degraded
    finally:
        trainer.close()
    allreduce_s = sum(
        telemetry.histogram("ccq.recover_allreduce_s").values
    )
    telemetry.close()
    return {
        "n_batches": n_batches,
        "recover_serial_s": serial_s,
        "recover_ddp2_s": ddp_s,
        # Recorded, never asserted: on a single-CPU container the two
        # shard workers time-slice one core, so a ratio below 1.0 is
        # expected there and >= 1.4x on real multi-core.
        "recover_speedup": serial_s / ddp_s if ddp_s else None,
        "allreduce_overhead_s": allreduce_s,
        "pool_degraded": degraded,
    }


def bench_ablation_search_cost(benchmark, get_task, record_result):
    task = get_task("resnet20_cifar10")
    telemetry = record_result.telemetry("ablation_search_cost")

    def run():
        ccq = run_ccq(task, telemetry=telemetry)
        # Same search again through the multiprocess probe backend, with
        # its own in-memory telemetry so the probe-stage timings of the
        # two modes never mix.
        par_telemetry = Telemetry.in_memory()
        try:
            ccq_par = run_ccq(task, telemetry=par_telemetry,
                              probe_workers=2)
        finally:
            par_telemetry.close()
        haq = run_haq(task, epoch_budget=ccq["training_epochs"])
        recovery = measure_recovery_wallclock(task)
        return {"ccq": ccq, "ccq_parallel": ccq_par, "haq": haq,
                "recovery_wallclock": recovery}

    data = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nAblation — search cost: CCQ vs HAQ-style RL at iso training budget")
    for method in ("ccq", "haq"):
        d = data[method]
        extra = (
            f"{d['probe_forward_passes']}/{d['probe_rounds']} feed-forward "
            f"probes ({d['probe_cache_hits']} cached, "
            f"{d['probe_cache_speedup']:.2f}x probe speedup)"
            if method == "ccq"
            else f"{d['episodes']} episodes"
        )
        print(
            f"{method.upper():<4} acc {d['accuracy']*100:6.2f}%  "
            f"compr {d['compression']:5.2f}x  "
            f"training epochs {d['training_epochs']:3d}  ({extra})"
        )

    ccq, ccq_par, haq = data["ccq"], data["ccq_parallel"], data["haq"]
    serial_s = ccq["probe_stage_s"]
    parallel_s = ccq_par["probe_stage_s"]
    # Recorded, never asserted: on a single-CPU container the fan-out
    # pays process overhead with no cores to amortise it, so a ratio
    # below 1.0 is expected there and above 1.0 on real multi-core.
    ratio = (
        serial_s / parallel_s
        if serial_s and parallel_s else None
    )
    data["probe_wallclock"] = {
        "serial_probe_stage_s": serial_s,
        "parallel_probe_stage_s": parallel_s,
        "parallel_over_serial_speedup": ratio,
    }
    print(
        f"probe stage wall-clock: serial {serial_s:.2f}s, "
        f"--probe-workers 2 {parallel_s:.2f}s "
        f"(speedup {ratio:.2f}x, recorded not asserted); "
        f"serial qweight cache {ccq['qweight_cache_hits']} hits / "
        f"{ccq['qweight_cache_misses']} misses "
        f"({ccq['qweight_hit_rate']*100:.0f}% hit rate)"
    )
    recovery = data["recovery_wallclock"]
    print(
        f"recovery stage wall-clock ({recovery['n_batches']} batches): "
        f"serial {recovery['recover_serial_s']:.2f}s, "
        f"--recover-workers 2 {recovery['recover_ddp2_s']:.2f}s "
        f"(speedup {recovery['recover_speedup']:.2f}x, recorded not "
        f"asserted); all-reduce overhead "
        f"{recovery['allreduce_overhead_s']:.3f}s"
    )
    record_result("ablation_search_cost", data)

    # CCQ may stop on the step budget slightly short of the 9x target;
    # both must land in the same compression regime for a fair read.
    assert ccq["compression"] >= 6.0
    assert haq["compression"] >= 6.0
    # Iso-cost: CCQ's gradual path ends at least as high as the RL search.
    assert ccq["accuracy"] >= haq["accuracy"] - 0.02
    # The parallel backend must land on the bit-identical trajectory,
    # only ever evaluating extra speculative candidates.
    assert ccq_par["bit_config"] == ccq["bit_config"]
    assert ccq_par["accuracy"] == ccq["accuracy"]
    assert ccq_par["probe_rounds"] == ccq["probe_rounds"]
    assert ccq_par["probe_forward_passes"] >= ccq["probe_forward_passes"]
    # The frozen-layer quantized-weight cache must see real traffic on
    # the serial path.
    assert ccq["qweight_cache_hits"] > 0
