"""Render the paper's figures as SVG from the benchmark results.

Run after a benchmark pass::

    pytest benchmarks/ --benchmark-only -s
    python benchmarks/make_figures.py          # writes benchmarks/figures/

Each figure mirrors its counterpart in the paper:

* ``fig1_lambda.svg``   — accuracy (and compression) vs average λ;
* ``fig2_curve.svg``    — the competitive-collaborative learning curve;
* ``fig3_recovery.svg`` — manual vs adaptive recovery epochs per step;
* ``fig4_hybrid.svg``   — hybrid LR profile and recovery accuracy;
* ``fig5_power.svg``    — MAC power per deployment (log scale).
"""

from __future__ import annotations

import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[1] / "src"))

from repro.utils.svg import Series, bar_chart, line_chart  # noqa: E402

RESULTS = pathlib.Path(__file__).parent / "results"
FIGURES = pathlib.Path(__file__).parent / "figures"


def load(name: str):
    path = RESULTS / f"{name}.json"
    if not path.exists():
        return None
    with open(path) as f:
        return json.load(f)


def fig1() -> str | None:
    data = load("fig1")
    if data is None:
        return None
    rows = [r for r in data["rows"] if not isinstance(r["lambda"], str)]
    return line_chart(
        [
            Series("accuracy %", [r["lambda"] for r in rows],
                   [r["accuracy"] * 100 for r in rows]),
            Series("compression /16", [r["lambda"] for r in rows],
                   [r["compression"] / 16 * 100 for r in rows]),
        ],
        title="Fig. 1 — accuracy vs memory-awareness lambda",
        x_label="average lambda",
        y_label="top-1 accuracy (%)",
    )


def fig2() -> str | None:
    data = load("fig2")
    if data is None:
        return None
    trace = data["trace"]
    return line_chart(
        [
            Series(
                "validation accuracy",
                [p["epoch"] for p in trace],
                [p["accuracy"] * 100 for p in trace],
            )
        ],
        title="Fig. 2 — competitive-collaborative learning curve",
        x_label="epoch",
        y_label="top-1 accuracy (%)",
    )


def fig3() -> str | None:
    data = load("fig3")
    if data is None:
        return None
    series = []
    for mode in ("manual", "adaptive"):
        epochs = data[mode]["epochs_per_step"]
        series.append(
            Series(mode, list(range(len(epochs))), epochs)
        )
    return line_chart(
        series,
        title="Fig. 3 — recovery epochs per quantization step",
        x_label="quantization step",
        y_label="fine-tuning epochs",
    )


def fig4() -> str | None:
    data = load("fig4")
    if data is None:
        return None
    hybrid = data["hybrid"]
    const = data["constant"]
    acc = line_chart(
        [
            Series("constant LR",
                   list(range(len(const["accuracy_history"]))),
                   [a * 100 for a in const["accuracy_history"]]),
            Series("hybrid LR",
                   list(range(len(hybrid["accuracy_history"]))),
                   [a * 100 for a in hybrid["accuracy_history"]]),
        ],
        title="Fig. 4 — recovery under the hybrid LR schedule",
        x_label="epoch",
        y_label="top-1 accuracy (%)",
    )
    return acc


def fig4_lr() -> str | None:
    data = load("fig4")
    if data is None or not data["hybrid"]["lr_history"]:
        return None
    lrs = data["hybrid"]["lr_history"]
    return line_chart(
        [Series("learning rate", list(range(1, len(lrs) + 1)), lrs)],
        title="Fig. 4 (inset) — hybrid plateau-cosine LR profile",
        x_label="epoch",
        y_label="learning rate",
    )


def fig5() -> str | None:
    data = load("fig5")
    if data is None:
        return None
    rows = data["rows"]
    groups = [r["network"] for r in rows]
    configs = ("unquantized", "fp-4b-fp", "fp-2b-fp", "fully-quantized")
    bars = [
        (c, [r[c]["total_mw"] for r in rows]) for c in configs
    ]
    return bar_chart(
        groups, bars,
        title="Fig. 5 — MAC power at iso-throughput (32nm, log scale)",
        y_label="power (mW, log10)",
        log_scale=True,
    )


def main() -> int:
    FIGURES.mkdir(exist_ok=True)
    outputs = {
        "fig1_lambda.svg": fig1(),
        "fig2_curve.svg": fig2(),
        "fig3_recovery.svg": fig3(),
        "fig4_hybrid.svg": fig4(),
        "fig4_lr_profile.svg": fig4_lr(),
        "fig5_power.svg": fig5(),
    }
    written = 0
    for name, svg in outputs.items():
        if svg is None:
            print(f"skip {name} (no results)")
            continue
        (FIGURES / name).write_text(svg)
        print(f"wrote benchmarks/figures/{name}")
        written += 1
    return 0 if written else 1


if __name__ == "__main__":
    sys.exit(main())
