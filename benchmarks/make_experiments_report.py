"""Regenerate the measured sections of EXPERIMENTS.md from results/*.json.

Run after a full benchmark pass::

    REPRO_BENCH_SCALE=smoke pytest benchmarks/ --benchmark-only -s
    python benchmarks/make_experiments_report.py

The script rewrites everything below the ``<!-- measured-results -->``
marker in EXPERIMENTS.md, keeping the hand-written paper-number context
above it intact.
"""

from __future__ import annotations

import json
import pathlib
import sys

RESULTS = pathlib.Path(__file__).parent / "results"
EXPERIMENTS = pathlib.Path(__file__).parent.parent / "EXPERIMENTS.md"
MARKER = "<!-- measured-results -->"


def load(name: str):
    path = RESULTS / f"{name}.json"
    if not path.exists():
        return None
    with open(path) as f:
        return json.load(f)


def pct(x: float) -> str:
    return f"{x * 100:.2f}"


def section_table1(lines):
    data = load("table1")
    lines.append("## Table I (measured)\n")
    if data is None:
        lines.append("_not yet run_\n")
        return
    lines.append("| Policy | Baseline % | One-shot % | Gradual % | Gradual − One-shot |")
    lines.append("|---|---|---|---|---|")
    for row in data["rows"]:
        gap = row["gradual"] - row["oneshot"]
        lines.append(
            f"| {row['policy']} | {pct(row['baseline'])} | "
            f"{pct(row['oneshot'])} | {pct(row['gradual'])} | "
            f"{gap * 100:+.2f} |"
        )
    lines.append("")
    lines.append(
        "Shape check: gradual ≥ one-shot for every policy — "
        + ("**holds**" if all(
            r["gradual"] >= r["oneshot"] - 0.02 for r in data["rows"]
        ) else "**violated**")
        + ".\n"
    )


def section_table2(lines):
    lines.append("## Table II (measured)\n")
    for suffix, label in (
        ("resnet20", "ResNet20 / synthetic CIFAR10"),
        ("resnet18", "ResNet18 / synthetic ImageNet"),
        ("resnet50", "ResNet50 / synthetic ImageNet"),
    ):
        data = load(f"table2_{suffix}")
        lines.append(f"### {label}\n")
        if data is None:
            lines.append("_not yet run_\n")
            continue
        lines.append(
            "| Framework | Baseline % | Bits | first/last | Quantized % "
            "| Compression | Degradation % |"
        )
        lines.append("|---|---|---|---|---|---|---|")
        for row in data["rows"]:
            lines.append(
                f"| {row['framework']} | {pct(row['baseline_top1'])} | "
                f"{row['bits']} | {row['first_last']} | "
                f"{pct(row['quantized_top1'])} | "
                f"{row['compression']:.2f}x | "
                f"{row['degradation'] * 100:.2f} |"
            )
        lines.append("")


def section_fig1(lines):
    data = load("fig1")
    lines.append("## Fig. 1 (measured)\n")
    if data is None:
        lines.append("_not yet run_\n")
        return
    lines.append("| λ | Accuracy % | Compression | Steps |")
    lines.append("|---|---|---|---|")
    for row in data["rows"]:
        lines.append(
            f"| {row['lambda']} | {pct(row['accuracy'])} | "
            f"{row['compression']:.2f}x | {row['steps']} |"
        )
    lines.append("")


def section_fig2(lines):
    data = load("fig2")
    lines.append("## Fig. 2 (measured)\n")
    if data is None:
        lines.append("_not yet run_\n")
        return
    records = data["records"]
    valleys = [r for r in records if r["pre"] - r["valley"] > 0.03]
    lines.append(
        f"{len(records)} quantization steps; baseline "
        f"{pct(data['baseline'])}%, final {pct(data['final'])}% at "
        f"{data['compression']:.2f}x."
    )
    lines.append("")
    lines.append("Deepest valleys (>3% drop) and their recoveries:\n")
    lines.append("| Layer → bits | Pre % | Valley % | Peak % |")
    lines.append("|---|---|---|---|")
    for r in sorted(valleys, key=lambda r: r["pre"] - r["valley"],
                    reverse=True)[:5]:
        lines.append(
            f"| {r['layer']} → {r['to_bits']}b | {pct(r['pre'])} | "
            f"{pct(r['valley'])} | {pct(r['peak'])} |"
        )
    lines.append("")


def section_fig3(lines):
    data = load("fig3")
    lines.append("## Fig. 3 (measured)\n")
    if data is None:
        lines.append("_not yet run_\n")
        return
    for mode in ("manual", "adaptive"):
        d = data[mode]
        total = sum(d["epochs_per_step"])
        lines.append(
            f"* **{mode}**: final {pct(d['final'])}% at "
            f"{d['compression']:.2f}x; {total} recovery epochs total; "
            f"epochs/step = {d['epochs_per_step']}"
        )
    lines.append("")


def section_fig4(lines):
    data = load("fig4")
    lines.append("## Fig. 4 (measured)\n")
    if data is None:
        lines.append("_not yet run_\n")
        return
    for mode in ("constant", "hybrid"):
        d = data[mode]
        accs = ", ".join(pct(a) for a in d["accuracy_history"])
        lines.append(f"* **{mode} LR** accuracy trajectory (%): {accs}")
        if d["lr_history"]:
            lrs = ", ".join(f"{lr:.4f}" for lr in d["lr_history"])
            lines.append(f"  LR profile: {lrs}")
    lines.append("")


def section_fig5(lines):
    data = load("fig5")
    lines.append("## Fig. 5 (measured)\n")
    if data is None:
        lines.append("_not yet run_\n")
        return
    lines.append(
        "| Network | Unquantized | fp-4b-fp | fp-2b-fp | Fully quantized "
        "| edge/middle (fp-2b-fp) |"
    )
    lines.append("|---|---|---|---|---|---|")
    for row in data["rows"]:
        lines.append(
            f"| {row['network']} "
            f"| {row['unquantized']['total_mw']:.3f} mW "
            f"| {row['fp-4b-fp']['total_mw']:.3f} mW "
            f"| {row['fp-2b-fp']['total_mw']:.3f} mW "
            f"| {row['fully-quantized']['total_mw']:.3f} mW "
            f"| {row['fp-2b-fp']['edge_to_middle']:.1f}x |"
        )
    lines.append("")


def section_ablations(lines):
    lines.append("## Ablations (measured)\n")
    gamma = load("ablation_gamma")
    if gamma is not None:
        lines.append("### Hedge temperature γ\n")
        lines.append("| γ | Accuracy % | Compression | Probes |")
        lines.append("|---|---|---|---|")
        for row in gamma["rows"]:
            lines.append(
                f"| {row['gamma']} | {pct(row['accuracy'])} | "
                f"{row['compression']:.2f}x | {row['probes']} |"
            )
        lines.append("")
    cost = load("ablation_search_cost")
    if cost is not None:
        lines.append("### Search cost: CCQ vs HAQ-style RL (iso budget)\n")
        for method in ("ccq", "haq"):
            d = cost[method]
            lines.append(
                f"* **{method.upper()}**: {pct(d['accuracy'])}% at "
                f"{d['compression']:.2f}x using {d['training_epochs']} "
                f"training epochs"
            )
        lines.append("")
    gran = load("ablation_granularity")
    if gran is not None:
        lines.append("### Competition granularity\n")
        for key in ("layer", "block"):
            d = gran[key]
            lines.append(
                f"* **{key}** ({d['experts']} experts): "
                f"{pct(d['accuracy'])}% at {d['compression']:.2f}x in "
                f"{d['steps']} steps / {d['probes']} probes"
            )
        lines.append("")


def main() -> int:
    text = EXPERIMENTS.read_text()
    if MARKER not in text:
        text = text.rstrip() + f"\n\n---\n\n{MARKER}\n"
    head = text.split(MARKER)[0] + MARKER + "\n\n"
    lines: list = [
        "_This section is auto-generated by "
        "`benchmarks/make_experiments_report.py` from the most recent "
        "`benchmarks/results/*.json`._\n",
    ]
    section_table1(lines)
    section_table2(lines)
    section_fig1(lines)
    section_fig2(lines)
    section_fig3(lines)
    section_fig4(lines)
    section_fig5(lines)
    section_ablations(lines)
    EXPERIMENTS.write_text(head + "\n".join(lines) + "\n")
    print(f"wrote {EXPERIMENTS}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
