"""Figure 1: final accuracy vs the memory-awareness coefficient lambda.

Paper protocol: run CCQ on ResNet20/CIFAR10 with different (average)
lambda values in the Eq. 7 mixing and plot the resulting accuracy.  The
paper finds a sweet spot around average lambda ~ 0.6-0.7: too low is
slow to compress (and the run budget truncates at a worse configuration),
too high quantizes big sensitive layers too aggressively to recover.

Shape claims checked:
  * every lambda reaches the target compression or the step budget;
  * the best accuracy is NOT at the extreme lambda = 1.0 (pure
    size-greedy), i.e. blending accuracy information helps;
  * the series is recorded for plotting.
"""

from repro.core import (
    CCQConfig,
    CCQQuantizer,
    DEFAULT_LADDER,
    LambdaSchedule,
    RecoveryConfig,
)

LAMBDAS = (0.0, 0.35, 0.65, 0.85, 1.0)
TARGET_COMPRESSION = 9.0


def run_lambda(task, lam: float, telemetry=None) -> dict:
    model, baseline = task.pretrained_model()
    train, val = task.loaders()
    # Decaying schedule centred on `lam` (clamped to [0, 1]).
    half_width = min(0.15, lam, 1.0 - lam)
    schedule = LambdaSchedule(
        start=lam + half_width, end=lam - half_width, decay_steps=15
    )
    config = CCQConfig(
        ladder=DEFAULT_LADDER,
        probes_per_step=4,
        probe_batches=1,
        lambda_schedule=schedule,
        recovery=RecoveryConfig(
            mode="adaptive", max_epochs=task.scale.finetune_epochs + 1,
            slack=0.01,
        ),
        lr=0.02,
        initial_recovery_epochs=1,
        target_compression=TARGET_COMPRESSION,
        max_steps=25,
        seed=0,
    )
    ccq = CCQQuantizer(model, train, val, config=config, policy="pact",
                       telemetry=telemetry)
    result = ccq.run()
    return {
        "lambda": lam,
        "accuracy": result.final_eval.accuracy,
        "baseline": baseline,
        "compression": result.compression,
        "steps": len(result.records),
    }


def run_constant_lambda(task, lam: float, telemetry=None) -> dict:
    """DESIGN.md ablation: constant lambda vs the linear decay."""
    model, baseline = task.pretrained_model()
    train, val = task.loaders()
    config = CCQConfig(
        ladder=DEFAULT_LADDER,
        probes_per_step=4,
        probe_batches=1,
        lambda_schedule=LambdaSchedule.constant(lam),
        recovery=RecoveryConfig(
            mode="adaptive", max_epochs=task.scale.finetune_epochs + 1,
            slack=0.01,
        ),
        lr=0.02,
        initial_recovery_epochs=1,
        target_compression=TARGET_COMPRESSION,
        max_steps=25,
        seed=0,
    )
    ccq = CCQQuantizer(model, train, val, config=config, policy="pact",
                       telemetry=telemetry)
    result = ccq.run()
    return {
        "lambda": f"const-{lam}",
        "accuracy": result.final_eval.accuracy,
        "baseline": baseline,
        "compression": result.compression,
        "steps": len(result.records),
    }


def bench_fig1_lambda_sweep(benchmark, get_task, record_result):
    task = get_task("resnet20_cifar10")
    telemetry = record_result.telemetry("fig1")

    def run():
        rows = [run_lambda(task, lam, telemetry=telemetry)
                for lam in LAMBDAS]
        rows.append(run_constant_lambda(task, 0.65, telemetry=telemetry))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nFig. 1 — accuracy vs average lambda (ResNet20 / synthetic CIFAR10)")
    print(f"{'lambda':>7} {'acc%':>7} {'compr':>7} {'steps':>6}")
    for row in rows:
        print(
            f"{str(row['lambda']):>10} {row['accuracy']*100:7.2f} "
            f"{row['compression']:6.2f}x {row['steps']:6d}"
        )
    record_result("fig1", {"rows": rows})

    # All runs compress meaningfully.
    assert all(r["compression"] >= 4.0 for r in rows)
    # The pure size-greedy extreme is not the unique best configuration:
    # some blended lambda does at least as well.
    numeric = [r for r in rows if not isinstance(r["lambda"], str)]
    best = max(numeric, key=lambda r: r["accuracy"])
    blended = [r for r in numeric if r["lambda"] < 1.0]
    assert max(b["accuracy"] for b in blended) >= best["accuracy"] - 0.01
