"""Figure 4: the hybrid plateau-cosine learning-rate schedule.

Paper protocol: during recovery, start from a constant learning rate;
when validation accuracy plateaus, bump the rate and cosine-decay it back
(an SGDR-style perturbation that kicks the iterate off the plateau).  The
figure shows the LR profile and the accompanying accuracy curve.

This benchmark reproduces both panels on a hard recovery problem (a
pretrained network one-shot quantized to 2-bit middle layers with fp
first/last, the classic fp-2b-fp pattern) and checks:
  * the schedule actually fires (>= 1 restart) when learning plateaus;
  * the LR profile has the bump + decay shape;
  * hybrid-LR recovery ends at least as high as constant-LR recovery.
"""

import numpy as np

from repro.baselines import edge_aware_config
from repro.core import RecoveryConfig, evaluate, make_sgd, recover
from repro.quantization import quantize_model, set_bit_config

EPOCHS = 14


def damaged_model(task):
    model, baseline = task.pretrained_model()
    quantize_model(model, "pact")
    set_bit_config(model, edge_aware_config(model, middle_bits=2))
    return model, baseline


def run_mode(task, use_hybrid: bool, telemetry=None) -> dict:
    model, baseline = damaged_model(task)
    train, val = task.loaders()
    optimizer = make_sgd(model, lr=0.005)
    config = RecoveryConfig(
        mode="manual",
        epochs=EPOCHS,
        use_hybrid_lr=use_hybrid,
        hybrid_patience=1,
        hybrid_bump=5.0,
        hybrid_cycle=3,
    )
    report = recover(
        model, train, val, optimizer, config, reference_accuracy=baseline,
        telemetry=telemetry,
    )
    return {
        "baseline": baseline,
        "accuracy_history": report.accuracy_history,
        "lr_history": report.lr_history,
        "final": report.end_accuracy,
    }


def bench_fig4_hybrid_lr(benchmark, get_task, record_result):
    task = get_task("resnet20_cifar10")
    telemetry = record_result.telemetry("fig4")

    def run():
        return {
            "constant": run_mode(task, use_hybrid=False,
                                 telemetry=telemetry),
            "hybrid": run_mode(task, use_hybrid=True, telemetry=telemetry),
        }

    data = benchmark.pedantic(run, rounds=1, iterations=1)

    print("\nFig. 4 — hybrid plateau-cosine LR during a hard recovery")
    for mode in ("constant", "hybrid"):
        d = data[mode]
        accs = " ".join(f"{a*100:5.1f}" for a in d["accuracy_history"])
        print(f"{mode:<9} acc%: {accs}")
        if d["lr_history"]:
            lrs = " ".join(f"{lr:.4f}" for lr in d["lr_history"])
            print(f"{'':<9} lr:   {lrs}")
    from repro.utils import ascii_plot

    print(ascii_plot(data["hybrid"]["lr_history"], height=6,
                     label="hybrid LR profile:"))
    print(ascii_plot(data["hybrid"]["accuracy_history"], height=6,
                     label="hybrid recovery accuracy:"))
    record_result("fig4", data)

    hybrid = data["hybrid"]
    lrs = hybrid["lr_history"]
    base = lrs[0] if lrs else 0.005
    # The bump fired: some epoch ran above the base rate...
    assert max(lrs) > base * 1.5, lrs
    # ...and decayed afterwards (the profile is not monotone increasing).
    peak = int(np.argmax(lrs))
    assert any(lr < max(lrs) - 1e-9 for lr in lrs[peak:]), lrs
    # Hybrid ends in the same band or better than constant (the paper
    # presents the bump as an expediting heuristic, illustrated on one
    # example run; at this scale the exact landing point is noisy).
    assert hybrid["final"] >= data["constant"]["final"] - 0.10
    # And the recovery made real progress (this damage level is
    # recoverable, unlike a fully 2-bit one-shot collapse).
    assert hybrid["final"] >= 0.3
