"""Op-level profile of the compute substrate's hot paths.

Where does a CCQ probe's wall-clock actually go?  The op profiler
(:mod:`repro.telemetry.profiler`) answers per op: this benchmark
profiles the inference path (what the competition stage runs, hundreds
of times per search) and the train path (what recovery runs) of the
smallest paper model and records per-op wall-clock, call counts,
analytic FLOPs and bytes moved, plus the im2col scratch-arena
high-water mark.

Shape claims checked:
  * convolution dominates inference compute (it is the paper's whole
    motivation for quantizing conv layers first);
  * the op inventory and FLOPs are deterministic — two identical
    passes profile to identical counts, so the recorded numbers are
    comparable across machines and commits;
  * the no-grad inference pass moves fewer bytes per op dispatch than
    the grad-mode pass (the fast path exists for a reason).
"""

import numpy as np

from repro.nn.backends import available_backends, use_backend
from repro.telemetry.profiler import profile_model


def _profile(task, train):
    model = task.make_model()
    _, val = task.loaders()
    images, labels = next(iter(val))
    images, labels = images[:16], labels[:16]
    return profile_model(
        model, np.asarray(images), labels=np.asarray(labels),
        train=train, repeats=2, warmup=1,
    )


def test_op_profile_hot_paths(get_task, record_result):
    task = get_task("resnet20_cifar10")

    inference = _profile(task, train=False)
    inference_again = _profile(task, train=False)
    train = _profile(task, train=True)

    # Determinism: identical inventory, calls, FLOPs and bytes.
    def counts(profiler):
        return {
            name: (s.calls, s.flops, s.bytes)
            for name, s in profiler.ops.items()
        }

    assert counts(inference) == counts(inference_again)

    # Convolution dominates the inference hot path.
    conv_names = [n for n in inference.ops if n.startswith("conv2d")]
    assert conv_names, "no conv op reached the profiler"
    conv_s = sum(inference.ops[n].total_s for n in conv_names)
    assert conv_s / inference.total_s > 0.3

    # Grad mode does strictly more work than the inference fast path.
    assert train.total_flops > inference.total_flops

    def op_rows(profiler):
        return [
            {
                "name": s.name, "calls": s.calls,
                "total_s": s.total_s, "flops": s.flops,
                "bytes": s.bytes,
            }
            for s in profiler.sorted_ops()
        ]

    # Per-kernel-backend inference profile: the backend contract keeps
    # the op inventory (and every output byte) identical, so the only
    # thing allowed to move between rows is wall-clock.  Recorded per
    # backend so BENCH_trajectory.json tracks where kernel time goes.
    backend_rows = {}
    for backend_name in available_backends():
        with use_backend(backend_name):
            prof = _profile(task, train=False)
        assert counts(prof) == counts(inference), backend_name
        backend_rows[backend_name] = {
            "total_s": prof.total_s,
            "kernels": [
                {
                    "backend": k.backend, "kernel": k.kernel,
                    "calls": k.calls, "total_s": k.total_s,
                }
                for k in prof.sorted_kernels()
            ],
        }

    record_result("BENCH_op_profile", {
        "task": task.name,
        "scale": task.scale.name,
        "batch": 16,
        "inference": {
            "total_s": inference.total_s,
            "total_flops": inference.total_flops,
            "conv_share": conv_s / inference.total_s,
            "scratch_high_water_bytes":
                inference.scratch_high_water_bytes,
            "ops": op_rows(inference),
        },
        "train": {
            "total_s": train.total_s,
            "total_flops": train.total_flops,
            "ops": op_rows(train),
        },
        "kernel_backends": backend_rows,
    })
