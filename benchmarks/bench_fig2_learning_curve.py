"""Figure 2: the competitive-collaborative learning curve.

Paper protocol: record validation accuracy across a CCQ run.  Each
quantization step carves a *valley* (competition hurts) and the following
fine-tuning epochs climb back to a *peak* (collaboration helps).

Shape claims checked:
  * at least one genuine valley exists (a quantization step drops
    accuracy measurably);
  * after every measurable valley the recovery regains most of the drop;
  * the final accuracy remains within a band of the initial one.
"""

from repro.core import (
    CCQConfig,
    CCQQuantizer,
    DEFAULT_LADDER,
    LambdaSchedule,
    RecoveryConfig,
)


def run_curve(task, telemetry=None) -> dict:
    model, baseline = task.pretrained_model()
    train, val = task.loaders()
    config = CCQConfig(
        ladder=DEFAULT_LADDER,
        probes_per_step=4,
        probe_batches=1,
        lambda_schedule=LambdaSchedule(start=0.7, end=0.2, decay_steps=15),
        recovery=RecoveryConfig(
            mode="adaptive", max_epochs=task.scale.finetune_epochs + 2,
            slack=0.01,
        ),
        lr=0.02,
        initial_recovery_epochs=1,
        target_compression=9.0,
        max_steps=30,
        seed=0,
    )
    ccq = CCQQuantizer(model, train, val, config=config, policy="pact",
                       telemetry=telemetry)
    result = ccq.run()
    return {
        "baseline": baseline,
        "trace": [
            {"epoch": e, "accuracy": a, "event": ev}
            for e, a, ev in result.accuracy_trace
        ],
        "records": [
            {
                "layer": r.layer_name,
                "to_bits": r.to_bits,
                "pre": r.pre_accuracy,
                "valley": r.post_quant_accuracy,
                "peak": r.recovered_accuracy,
                "epochs": r.recovery.epochs_used,
            }
            for r in result.records
        ],
        "final": result.final_eval.accuracy,
        "compression": result.compression,
    }


def bench_fig2_learning_curve(benchmark, get_task, record_result):
    task = get_task("resnet20_cifar10")
    telemetry = record_result.telemetry("fig2")
    data = benchmark.pedantic(
        lambda: run_curve(task, telemetry=telemetry), rounds=1, iterations=1
    )

    print("\nFig. 2 — learning curve (valleys = competition, peaks = collaboration)")
    print(f"{'step':>4} {'layer':<22} {'bits':>4} {'pre%':>7} "
          f"{'valley%':>8} {'peak%':>7} {'epochs':>6}")
    for i, rec in enumerate(data["records"]):
        print(
            f"{i:4d} {rec['layer']:<22} {rec['to_bits']:>3}b "
            f"{rec['pre']*100:7.2f} {rec['valley']*100:8.2f} "
            f"{rec['peak']*100:7.2f} {rec['epochs']:6d}"
        )
    print(f"final acc {data['final']*100:.2f}% at {data['compression']:.2f}x")
    from repro.utils import ascii_plot

    accuracies = [point["accuracy"] for point in data["trace"]]
    print(ascii_plot(accuracies, height=10, width=72,
                     label="validation accuracy over the CCQ run:"))
    record_result("fig2", data)

    records = data["records"]
    # Valleys: some step visibly hurts accuracy.
    drops = [r["pre"] - r["valley"] for r in records]
    assert max(drops) > 0.02, "no quantization step produced a valley"
    # Collaboration recovers most of every measurable valley.  Recovery
    # may complete during *later* steps' fine-tuning (exactly as in the
    # paper's curve), so check the trajectory after the valley, not just
    # the valley's own step.
    accuracies = [p["accuracy"] for p in data["trace"]]
    for i, r in enumerate(records):
        drop = r["pre"] - r["valley"]
        if drop > 0.03:
            valley_epoch = next(
                idx for idx, p in enumerate(data["trace"])
                if p["event"].startswith(f"quantize:{r['layer']}")
                and abs(p["accuracy"] - r["valley"]) < 1e-9
            )
            later_best = max(accuracies[valley_epoch:])
            assert later_best - r["valley"] >= 0.5 * drop, r
    # End-to-end the curve does not collapse.
    assert data["final"] >= data["baseline"] - 0.15
